(** Experiment harness: regenerates every table and figure of the
    paper's evaluation (§5).  Each [figN] function prints the same
    rows/series the paper reports; absolute numbers differ (simulated
    substrate) but the shapes are the comparison targets recorded in
    EXPERIMENTS.md. *)

open Ipa_sim
open Ipa_store
open Ipa_runtime
open Ipa_apps

(* The four system configurations of §5.2.1. *)
type sys = Causal | Ipa | Strong | Indigo

let sys_name = function
  | Causal -> "Causal"
  | Ipa -> "IPA"
  | Strong -> "Strong"
  | Indigo -> "Indigo"

let mode_of = function
  | Causal | Ipa -> Config.Local
  | Strong -> Config.Strong
  | Indigo -> Config.Indigo

let regions =
  [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]

type env = {
  engine : Engine.t;
  net : Net.t;
  cluster : Cluster.t;
  cfg : Config.t;
}

let make_env ?(seed = 42) ?service_per_object ?service_per_update
    ?service_base (sys : sys) : env =
  let engine = Engine.create () in
  let net = Net.create ~seed () in
  let cluster = Cluster.create regions in
  let cfg =
    Config.create ?service_per_object ?service_per_update ?service_base
      ~mode:(mode_of sys) ~engine ~net ~cluster ()
  in
  { engine; net; cluster; cfg }

let pr fmt = Fmt.pr fmt

(* ------------------------------------------------------------------ *)
(* Machine-readable BENCH rows                                         *)
(* ------------------------------------------------------------------ *)

(** One value of a BENCH JSON row.  [Fd] renders with a fixed number of
    decimals so each experiment keeps its historical precision. *)
type jv = S of string | B of bool | I of int | F of float | Fd of float * int

let jv_render = function
  | S s -> Fmt.str "%S" s
  | B b -> if b then "true" else "false"
  | I n -> string_of_int n
  | F x -> Fmt.str "%.3f" x
  | Fd (x, d) -> Fmt.str "%.*f" d x

let json_obj (fields : (string * jv) list) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Fmt.str "\"%s\":%s" k (jv_render v)) fields)
  ^ "}"

(** Render one row (tagged with its experiment name), print it on the
    [BENCH] channel, and return it for JSON-file accumulation. *)
let bench_row ~(experiment : string) (fields : (string * jv) list) : string =
  let row = json_obj (("experiment", S experiment) :: fields) in
  pr "BENCH %s@." row;
  row

(** Write an experiment's accumulated rows (plus header fields) to its
    committed [BENCH_*.json] file. *)
let write_bench_json ~(file : string) ~(experiment : string)
    (header : (string * jv) list) (rows : string list) : unit =
  let oc = open_out file in
  Printf.fprintf oc "{%s,\"rows\":[\n%s\n]}\n"
    (String.concat ","
       (List.map
          (fun (k, v) -> Fmt.str "\"%s\":%s" k (jv_render v))
          (("experiment", S experiment) :: header)))
    (String.concat ",\n" rows);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  pr "== Table 1: Types of invariants present in applications ==@.";
  Ipa_core.Report.pp_table1 Fmt.stdout (Ipa_spec.Catalog.all ())

(* ------------------------------------------------------------------ *)
(* Figure 2: the rem_tourn/enroll analysis                             *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  pr "== Figure 2: conflict analysis of rem_tourn || enroll ==@.@.";
  let spec = Ipa_spec.Catalog.tournament () in
  let op name =
    Ipa_core.Detect.aop_of (Option.get (Ipa_spec.Types.find_op spec name))
  in
  (match Ipa_core.Detect.check_pair spec (op "rem_tourn") (op "enroll") with
  | Ipa_core.Detect.Conflict w ->
      pr "(a) referential integrity broken:@.%s@.@."
        (Ipa_core.Report.witness_to_string ~op1:"rem_tourn" ~op2:"enroll" w)
  | Ipa_core.Detect.Safe -> pr "unexpected: pair is safe@.");
  let sols =
    Ipa_core.Repair.repair_conflicts ~search_rules:true spec
      (op "rem_tourn", op "enroll")
  in
  List.iteri
    (fun i s ->
      pr "resolution %d: %a@.@." (i + 1) Ipa_core.Repair.pp_solution s)
    sols

(* ------------------------------------------------------------------ *)
(* Figure 4: Tournament latency vs throughput                          *)
(* ------------------------------------------------------------------ *)

let tournament_metrics ?(seed = 42) ?(duration = 8_000.0) (sys : sys)
    ~(clients : int) : Metrics.t =
  let env = make_env ~seed sys in
  let variant =
    match sys with Ipa -> Tournament.Ipa | _ -> Tournament.Causal
  in
  let app = Tournament.create variant in
  let params = Tournament.default_params in
  Tournament.seed_data app params env.cluster;
  Engine.run_until env.engine 500.0 (* let seeding replicate *);
  let w =
    {
      Driver.clients_per_region = clients;
      duration_ms = duration;
      warmup_ms = 1_000.0;
      think_time_ms = 0.0;
      only_region = None;
      next_op = Tournament.next_op app params;
    }
  in
  Driver.run ~seed env.cfg w

let fig4 ?(client_counts = [ 1; 2; 4; 8; 16; 32; 64 ]) () =
  pr "== Figure 4: peak throughput for Tournament (35%% writes) ==@.";
  pr "%-8s %8s %12s %12s@." "system" "clients" "tput[tx/s]" "lat[ms]";
  List.iter
    (fun sys ->
      List.iter
        (fun clients ->
          let m = tournament_metrics sys ~clients in
          pr "%-8s %8d %12.1f %12.2f@." (sys_name sys) clients
            (Metrics.throughput m)
            (Metrics.mean_latency m ()))
        client_counts;
      pr "@.")
    [ Strong; Indigo; Ipa; Causal ]

(* ------------------------------------------------------------------ *)
(* Figure 5: per-operation latency in Tournament                       *)
(* ------------------------------------------------------------------ *)

let fig5 ?(clients = 8) () =
  pr "== Figure 5: latency of individual operations, Tournament ==@.";
  let ops =
    [
      ("begin_tourn", "Begin"); ("finish_tourn", "Finish");
      ("rem_tourn", "Remove"); ("do_match", "DoMatch"); ("enroll", "Enroll");
      ("disenroll", "Disenroll"); ("status", "Status");
    ]
  in
  pr "%-10s %18s %18s %18s@." "op" "Indigo[ms±sd]" "IPA[ms±sd]"
    "Causal[ms±sd]";
  let metrics =
    List.map (fun sys -> (sys, tournament_metrics sys ~clients))
      [ Indigo; Ipa; Causal ]
  in
  List.iter
    (fun (op, label) ->
      pr "%-10s" label;
      List.iter
        (fun (_, m) ->
          pr " %9.2f ± %6.2f"
            (Metrics.mean_latency m ~op ())
            (Metrics.stddev_latency m ~op ()))
        metrics;
      pr "@.")
    ops

(* ------------------------------------------------------------------ *)
(* Figure 6: per-operation latency in Twitter                          *)
(* ------------------------------------------------------------------ *)

let twitter_metrics ?(seed = 42) (variant : Twitter.variant)
    ~(clients : int) : Metrics.t =
  let env = make_env ~seed Causal (* all Twitter variants run Local *) in
  let app = Twitter.create variant in
  let params = Twitter.default_params in
  Twitter.seed_data app params env.cluster;
  Engine.run_until env.engine 500.0;
  let w =
    {
      Driver.clients_per_region = clients;
      duration_ms = 8_000.0;
      warmup_ms = 1_000.0;
      think_time_ms = 0.0;
      only_region = None;
      next_op = Twitter.next_op app params;
    }
  in
  Driver.run ~seed env.cfg w

let fig6 ?(clients = 4) () =
  pr "== Figure 6: latency of individual operations, Twitter ==@.";
  let ops =
    [
      ("tweet", "Tweet"); ("retweet", "Retweet"); ("del_tweet", "Del.Tweet");
      ("follow", "Follow"); ("unfollow", "Unfollow"); ("add_user", "AddUser");
      ("rem_user", "RemUser"); ("timeline", "Timeline");
    ]
  in
  pr "%-10s %16s %16s %16s@." "op" "Causal[ms]" "Add-Wins[ms]" "Rem-Wins[ms]";
  let metrics =
    List.map
      (fun v -> twitter_metrics v ~clients)
      [ Twitter.Causal; Twitter.Add_wins; Twitter.Rem_wins ]
  in
  List.iter
    (fun (op, label) ->
      pr "%-10s" label;
      List.iter (fun m -> pr " %15.2f " (Metrics.mean_latency m ~op ())) metrics;
      pr "@.")
    ops

(* ------------------------------------------------------------------ *)
(* Figure 7: Ticket throughput + invariant violations                  *)
(* ------------------------------------------------------------------ *)

let ticket_metrics ?(seed = 42) (variant : Ticket.variant) ~(clients : int) :
    Metrics.t * int =
  let env = make_env ~seed Causal in
  (* a fixed pool of tickets per event (FusionTicket): high load sells
     out during the divergence window and oversells proportionally *)
  let app = Ticket.create ~initial_stock:2000 variant in
  let params =
    {
      Ticket.n_events = 5;
      buy_ratio = 0.5;
      restock_ratio = 0.0;
      restock_amount = 0;
    }
  in
  Ticket.seed_data app params env.cluster;
  Engine.run_until env.engine 500.0;
  let events = List.init params.Ticket.n_events (fun i -> Fmt.str "e%d" i) in
  let w =
    {
      Driver.clients_per_region = clients;
      duration_ms = 8_000.0;
      warmup_ms = 1_000.0;
      think_time_ms = 0.0;
      only_region = None;
      next_op = Ticket.next_op app params;
    }
  in
  let m = Driver.run ~seed env.cfg w in
  (* end-state check: total oversold tickets a user can observe *)
  let rep = List.hd env.cluster.Cluster.replicas in
  (m, Ticket.oversell_depth app rep events)

let fig7 ?(client_counts = [ 1; 2; 4; 8; 16; 32 ]) () =
  pr "== Figure 7: Ticket benchmark — latency and invariant violations ==@.";
  pr "%-8s %12s %12s %12s %12s@." "system" "tput[tx/s]" "lat[ms]"
    "violations" "repaired";
  List.iter
    (fun variant ->
      List.iter
        (fun clients ->
          let m, oversold = ticket_metrics variant ~clients in
          pr "%-8s %12.1f %12.2f %12d %12d@."
            (match variant with
            | Ticket.Causal -> "Causal"
            | Ticket.Ipa -> "IPA"
            | Ticket.Escrow -> "Escrow")
            (Metrics.throughput m)
            (Metrics.mean_latency m ())
            oversold m.Metrics.violations)
        client_counts;
      pr "@.")
    [ Ticket.Causal; Ticket.Ipa; Ticket.Escrow ]

(* ------------------------------------------------------------------ *)
(* Figure 8: speed-up of IPA vs Strong microbenchmarks                 *)
(* ------------------------------------------------------------------ *)

(* a synthetic op performing [k] counter updates over [keys] objects *)
let synthetic_op ~name ~(keys : int) ~(updates_per_key : int) : Config.op_exec
    =
  {
    Config.op_name = name;
    is_update = true;
    reservations = [];
    run =
      (fun rep ->
        let tx = Txn.begin_ rep in
        for key_i = 0 to keys - 1 do
          let key = Fmt.str "mb:%d" key_i in
          let c =
            Ipa_store.Obj.as_pncounter (Txn.get tx key Ipa_store.Obj.T_pncounter)
          in
          for _ = 1 to updates_per_key do
            Txn.update tx key
              (Ipa_store.Obj.Op_pncounter
                 (Ipa_crdt.Pncounter.prepare c ~rep:rep.Replica.id 1))
          done
        done;
        Config.outcome (Txn.commit tx));
  }

let micro_latency ?(seed = 7) (sys : sys) (op : Config.op_exec) : float =
  (* measure the client-perceived latency from a non-primary region (the
     paper's microbenchmark client), with a single client and the
     storage-cost model calibrated in EXPERIMENTS.md *)
  let env =
    make_env ~seed ~service_base:1.15 ~service_per_update:0.018
      ~service_per_object:1.25 sys
  in
  let w =
    {
      Driver.clients_per_region = 1;
      duration_ms = 4_000.0;
      warmup_ms = 500.0;
      think_time_ms = 20.0;
      only_region = Some "us-west";
      next_op = (fun _rng ~region:_ -> op);
    }
  in
  let m = Driver.run ~seed env.cfg w in
  Metrics.mean_latency m ()

let fig8 () =
  pr "== Figure 8 (top): speed-up, k updates to a single object ==@.";
  pr "%-8s %12s %12s %8s@." "k" "IPA[ms]" "Strong[ms]" "speedup";
  List.iter
    (fun k ->
      (* IPA executes the op with k updates locally; Strong executes the
         original single-update op at the primary *)
      let ipa =
        micro_latency Ipa (synthetic_op ~name:"multi" ~keys:1 ~updates_per_key:k)
      in
      let strong =
        micro_latency Strong
          (synthetic_op ~name:"orig" ~keys:1 ~updates_per_key:1)
      in
      pr "%-8d %12.2f %12.2f %8.1f@." k ipa strong (strong /. ipa))
    [ 1; 2; 64; 128; 512; 1024; 2048 ];
  pr "@.== Figure 8 (bottom): speed-up, one update to each of n objects ==@.";
  pr "%-8s %12s %12s %8s@." "n" "IPA[ms]" "Strong[ms]" "speedup";
  List.iter
    (fun n ->
      let ipa =
        micro_latency Ipa (synthetic_op ~name:"multi" ~keys:n ~updates_per_key:1)
      in
      let strong =
        micro_latency Strong
          (synthetic_op ~name:"orig" ~keys:1 ~updates_per_key:1)
      in
      pr "%-8d %12.2f %12.2f %8.1f@." n ipa strong (strong /. ipa))
    [ 1; 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Figure 9: reservation contention                                    *)
(* ------------------------------------------------------------------ *)

let contention_op ~(pct : int) (rng : Rng.t) ~(region : string) :
    Config.op_exec =
  let key =
    if Rng.int rng 100 < pct then Fmt.str "shared:%d" (Rng.int rng 4)
    else Fmt.str "local:%s:%d" region (Rng.int rng 16)
  in
  {
    Config.op_name = "update";
    is_update = true;
    reservations = [ (key, Config.Exclusive) ];
    run =
      (fun rep ->
        let tx = Txn.begin_ rep in
        let c =
          Ipa_store.Obj.as_pncounter (Txn.get tx key Ipa_store.Obj.T_pncounter)
        in
        Txn.update tx key
          (Ipa_store.Obj.Op_pncounter
             (Ipa_crdt.Pncounter.prepare c ~rep:rep.Replica.id 1));
        Config.outcome (Txn.commit tx));
  }

let fig9 () =
  pr "== Figure 9: latency vs reservation contention ==@.";
  pr "%-12s %12s %12s@." "contention" "IPA[ms]" "Indigo[ms]";
  let run sys pct =
    let env = make_env ~seed:11 sys in
    let w =
      {
        Driver.clients_per_region = 4;
        duration_ms = 8_000.0;
        warmup_ms = 1_000.0;
        think_time_ms = 5.0;
        only_region = None;
        next_op = contention_op ~pct;
      }
    in
    let m = Driver.run ~seed:11 env.cfg w in
    Metrics.mean_latency m ()
  in
  (* "N/A" row: IPA does not use reservations at all *)
  pr "%-12s %12.2f %12s@." "N/A" (run Ipa 0) "-";
  List.iter
    (fun pct ->
      pr "%-11d%% %12.2f %12.2f@." pct (run Ipa pct) (run Indigo pct))
    [ 0; 2; 5; 10; 20; 50 ]

(* ------------------------------------------------------------------ *)
(* §5.1.3: analysis cost microbenchmarks (Bechamel)                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  pr "== Analysis & substrate microbenchmarks (Bechamel) ==@.";
  let open Bechamel in
  let spec = Ipa_spec.Catalog.tournament () in
  let mini =
    Ipa_spec.Spec_parser.parse_string
      {|
app Mini
sort P
sort T
predicate p(P)
predicate t(T)
predicate e(P, T)
invariant ref: forall(P:x, T:y) :- e(x,y) => p(x) and t(y)
rule p: add-wins
rule t: add-wins
rule e: add-wins
operation rem_t(T:y)
  t(y) := false
operation enroll(P:x, T:y)
  e(x, y) := true
|}
  in
  let op s name =
    Ipa_core.Detect.aop_of (Option.get (Ipa_spec.Types.find_op s name))
  in
  let tests =
    [
      Test.make ~name:"detect: conflicting pair (mini)"
        (Staged.stage (fun () ->
             ignore (Ipa_core.Detect.check_pair mini (op mini "rem_t") (op mini "enroll"))));
      Test.make ~name:"detect: safe pair (tournament)"
        (Staged.stage (fun () ->
             ignore
               (Ipa_core.Detect.check_pair spec (op spec "add_player")
                  (op spec "add_tourn"))));
      Test.make ~name:"repair: rem_t/enroll (mini)"
        (Staged.stage (fun () ->
             ignore
               (Ipa_core.Repair.repair_conflicts mini
                  (op mini "rem_t", op mini "enroll"))));
      Test.make ~name:"sat: pigeonhole 5/4"
        (Staged.stage (fun () ->
             let s = Ipa_solver.Sat.create () in
             let p = Array.init 5 (fun _ -> Array.init 4 (fun _ -> Ipa_solver.Sat.new_var s)) in
             for i = 0 to 4 do
               Ipa_solver.Sat.add_clause s (Array.to_list p.(i))
             done;
             for h = 0 to 3 do
               for i = 0 to 4 do
                 for j = i + 1 to 4 do
                   Ipa_solver.Sat.add_clause s [ -p.(i).(h); -p.(j).(h) ]
                 done
               done
             done;
             ignore (Ipa_solver.Sat.solve s)));
      Test.make ~name:"crdt: awset add+remove"
        (Staged.stage (fun () ->
             let s =
               Ipa_crdt.Awset.apply Ipa_crdt.Awset.empty
                 (Ipa_crdt.Awset.prepare_add Ipa_crdt.Awset.empty
                    ~dot:{ Ipa_crdt.Vclock.rep = "r"; cnt = 1 }
                    "x")
             in
             ignore (Ipa_crdt.Awset.apply s (Ipa_crdt.Awset.prepare_remove s "x"))));
      Test.make ~name:"store: txn commit + deliver"
        (Staged.stage (fun () ->
             let c = Cluster.create regions in
             let rep = List.hd c.Cluster.replicas in
             let tx = Txn.begin_ rep in
             let s = Ipa_store.Obj.as_awset (Txn.get tx "k" Ipa_store.Obj.T_awset) in
             Txn.update tx "k"
               (Ipa_store.Obj.Op_awset
                  (Ipa_crdt.Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "e"));
             match Txn.commit tx with
             | Some b -> Cluster.broadcast_now c b
             | None -> ()));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> pr "%-40s %12.1f ns/run@." name est
        | _ -> pr "%-40s (no estimate)@." name)
      results
  in
  benchmark (Test.make_grouped ~name:"ipa" tests)

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Analysis pipeline: instrumented vs uninstrumented (paper Table 3)   *)
(* ------------------------------------------------------------------ *)

(** Full [Ipa.run] over the four catalog applications, once with the
    analysis caches and witness pruning enabled and once with both
    disabled.  Asserts that resolutions, flagged pairs and the patched
    specification are identical in both modes (the optimizations are
    exact), then reports wall time, SAT-solve counts, cache-hit and
    pruning rates — the reproduction counterpart of the paper's Table 3
    analysis-time column.  Emits one machine-readable [BENCH] JSON line
    per application. *)
(* the observable outcome of an analysis run: what the exactness
   assertions of [analysis] and [parallel] compare across modes *)
let analysis_summary (r : Ipa_core.Ipa.report) =
  let open Ipa_core in
  ( List.map
      (fun (res : Ipa.resolution) ->
        ( res.Ipa.r_op1,
          res.Ipa.r_op2,
          match res.Ipa.r_outcome with
          | Ipa.Repaired s -> "repaired:" ^ s.Repair.s_op
          | Ipa.Compensated _ -> "compensated"
          | Ipa.Flagged -> "flagged" ))
      r.Ipa.resolutions,
    Ipa.flagged_pairs r,
    Ipa.patched_spec r )

let catalog_apps =
  [
    ("ticket", Ipa_spec.Catalog.ticket);
    ("tournament", Ipa_spec.Catalog.tournament);
    ("twitter", Ipa_spec.Catalog.twitter);
    ("tpcw", Ipa_spec.Catalog.tpcw);
  ]

let analysis () =
  let open Ipa_core in
  pr "== Analysis pipeline: caches + witness pruning vs baseline ==@.";
  pr "%-12s %9s %9s %9s %9s %8s %8s %8s %8s@." "app" "on[s]" "off[s]"
    "solves" "solves0" "speedup" "pruned" "ground" "verdict";
  let summary = analysis_summary in
  List.iter
    (fun (name, mk) ->
      let ctx_on = Anactx.create () in
      let r_on, on_s = time_it (fun () -> Ipa.run ~ctx:ctx_on (mk ())) in
      let ctx_off = Anactx.create ~cache:false ~prune:false () in
      let r_off, off_s = time_it (fun () -> Ipa.run ~ctx:ctx_off (mk ())) in
      if summary r_on <> summary r_off then
        failwith
          (name ^ ": caching/pruning changed the analysis outcome — \
            the optimizations must be exact");
      let s_on = Anactx.stats ctx_on and s_off = Anactx.stats ctx_off in
      let speedup =
        float_of_int s_off.Anactx.sat_calls
        /. float_of_int (max 1 s_on.Anactx.sat_calls)
      in
      pr "%-12s %9.2f %9.2f %9d %9d %7.1fx %7.0f%% %7.0f%% %7.0f%%@." name
        on_s off_s s_on.Anactx.sat_calls s_off.Anactx.sat_calls speedup
        (100. *. Anactx.prune_rate s_on)
        (100. *. Anactx.ground_hit_rate s_on)
        (100. *. Anactx.verdict_hit_rate s_on);
      ignore
        (bench_row ~experiment:"analysis"
           [
             ("app", S name);
             ("wall_s", F on_s);
             ("wall_s_baseline", F off_s);
             ("sat_calls", I s_on.Anactx.sat_calls);
             ("sat_calls_baseline", I s_off.Anactx.sat_calls);
             ("solve_reduction", Fd (speedup, 2));
             ("sat_conflicts", I s_on.Anactx.sat_conflicts);
             ("sat_decisions", I s_on.Anactx.sat_decisions);
             ("sat_propagations", I s_on.Anactx.sat_propagations);
             ("prune_rate", F (Anactx.prune_rate s_on));
             ("ground_hit_rate", F (Anactx.ground_hit_rate s_on));
             ("verdict_hit_rate", F (Anactx.verdict_hit_rate s_on));
             ("cands_generated", I s_on.Anactx.cands_generated);
             ("cands_pruned", I s_on.Anactx.cands_pruned);
             ("cands_checked", I s_on.Anactx.cands_checked);
             ("pairs_checked", I s_on.Anactx.pairs_checked);
             ("iterations", I r_on.Ipa.iterations);
             ("resolutions", I (List.length r_on.Ipa.resolutions));
             ("identical", B true);
           ]))
    catalog_apps;
  pr
    "@.(The paper analyses each application in a few seconds with a \
     Z3-based@. checker; the reproduction's SAT pipeline is in the same \
     range, and the@. caches/pruning are exact: identical resolutions, \
     flagged pairs and@. patched specifications in both modes.)@."

(* DESIGN §5: clause-relevance restriction — soundness-preserving
   over-approximation that cuts grounding cost *)
let ablation_clause_restriction () =
  pr "-- ablation: clause-relevance restriction (analysis cost) --@.";
  let spec = Ipa_spec.Catalog.tournament () in
  let ops = List.map Ipa_core.Detect.aop_of spec.Ipa_spec.Types.operations in
  let rec pairs = function
    | [] -> []
    | o :: rest -> List.map (fun o' -> (o, o')) (o :: rest) @ pairs rest
  in
  let all_pairs = pairs ops in
  let run ~restrict_clauses =
    List.length
      (List.filter
         (fun (o1, o2) ->
           Ipa_core.Detect.check_pair ~restrict_clauses spec o1 o2
           <> Ipa_core.Detect.Safe)
         all_pairs)
  in
  let n_on, t_on = time_it (fun () -> run ~restrict_clauses:true) in
  let n_off, t_off = time_it (fun () -> run ~restrict_clauses:false) in
  pr "restricted:   %d conflicts in %.2fs@." n_on t_on;
  pr "unrestricted: %d conflicts in %.2fs  (%.1fx slower)@.@." n_off t_off
    (t_off /. t_on)

(* DESIGN §5: domain widening is required for cardinality soundness *)
let ablation_domain_widening () =
  pr "-- ablation: cardinality domain widening (soundness) --@.";
  let spec = Ipa_spec.Catalog.tournament () in
  let enroll =
    Ipa_core.Detect.aop_of
      (Option.get (Ipa_spec.Types.find_op spec "enroll"))
  in
  let v_on = Ipa_core.Detect.check_pair ~widen:true spec enroll enroll in
  let v_off = Ipa_core.Detect.check_pair ~widen:false spec enroll enroll in
  pr "enroll || enroll with widening:    %s@."
    (match v_on with
    | Ipa_core.Detect.Conflict w ->
        "CONFLICT (" ^ String.concat "," w.Ipa_core.Detect.violated ^ ")"
    | Ipa_core.Detect.Safe -> "safe");
  pr "enroll || enroll without widening: %s  <-- capacity conflict missed@.@."
    (match v_off with
    | Ipa_core.Detect.Conflict _ -> "CONFLICT"
    | Ipa_core.Detect.Safe -> "safe (UNSOUND)")

(* repair-search filters: intent preservation and minimality *)
let ablation_repair_filters () =
  pr "-- ablation: repair-search filters (solution quality) --@.";
  let spec = Ipa_spec.Catalog.tournament () in
  let op name =
    Ipa_core.Detect.aop_of (Option.get (Ipa_spec.Types.find_op spec name))
  in
  let pair = (op "rem_tourn", op "enroll") in
  let count ?check_intent ?check_minimality () =
    List.length
      (Ipa_core.Repair.repair_conflicts ?check_intent ?check_minimality
         ~search_rules:true spec pair)
  in
  pr "full filters:          %d solutions@." (count ());
  pr "no minimality filter:  %d solutions@." (count ~check_minimality:false ());
  pr "no intent filter:      %d solutions (degenerate ones included)@.@."
    (count ~check_intent:false ())

(* store-level GC: metadata growth with and without stability GC *)
let ablation_gc () =
  pr "-- ablation: causal-stability garbage collection --@.";
  let run ~gc_period =
    let env = make_env ~seed:5 Causal in
    let app = Tournament.create Tournament.Causal in
    let params = Tournament.default_params in
    Tournament.seed_data app params env.cluster;
    Engine.run_until env.engine 500.0;
    (match gc_period with
    | Some p ->
        let rec tick () =
          List.iter
            (fun r -> ignore (Ipa_store.Replica.gc r))
            env.cluster.Cluster.replicas;
          Engine.schedule env.engine ~delay:p tick
        in
        Engine.schedule env.engine ~delay:p tick
    | None -> ());
    let w =
      {
        Driver.clients_per_region = 4;
        duration_ms = 6_000.0;
        warmup_ms = 500.0;
        think_time_ms = 0.0;
        only_region = None;
        next_op = Tournament.next_op app params;
      }
    in
    let _ = Driver.run ~seed:5 env.cfg w in
    (* total rem-wins metadata on one replica (the "active" set) *)
    let rep = List.hd env.cluster.Cluster.replicas in
    match Ipa_store.Replica.peek rep "active" with
    | Some (Ipa_store.Obj.O_rwset s) -> Ipa_crdt.Rwset.metadata_size s
    | _ -> 0
  in
  let without = run ~gc_period:None in
  let with_gc = run ~gc_period:(Some 500.0) in
  pr "rem-wins metadata after 6s run: without GC %d records, with GC %d \
      records (%.1fx smaller)@.@."
    without with_gc
    (float_of_int without /. float_of_int (max 1 with_gc))

(* hybrid coordination: IPA + reservations only for flagged pairs *)
let ablation_hybrid () =
  pr "-- ablation: coordination fallback for flagged pairs (Hybrid) --@.";
  pr "   (begin/finish flagged under all-add-wins rules; everything else@.";
  pr "    runs IPA-locally — vs full Indigo coordination)@.";
  let run mode =
    let engine = Engine.create () in
    let net = Net.create ~seed:21 () in
    let cluster = Cluster.create regions in
    let cfg = Config.create ~mode ~engine ~net ~cluster () in
    let app = Tournament.create Tournament.Ipa in
    let params = Tournament.default_params in
    Tournament.seed_data app params cluster;
    Engine.run_until engine 500.0;
    let w =
      {
        Driver.clients_per_region = 8;
        duration_ms = 6_000.0;
        warmup_ms = 500.0;
        think_time_ms = 0.0;
        only_region = None;
        next_op = Tournament.next_op app params;
      }
    in
    let m = Driver.run ~seed:21 cfg w in
    (Metrics.mean_latency m (), Metrics.throughput m)
  in
  let flagged name = name = "begin_tourn" || name = "finish_tourn" in
  List.iter
    (fun (label, mode) ->
      let lat, tput = run mode in
      pr "%-22s %8.2f ms   %10.1f tx/s@." label lat tput)
    [
      ("IPA (no coordination)", Config.Local);
      ("Hybrid (flagged only)", Config.Hybrid flagged);
      ("Indigo (all ops)", Config.Indigo);
    ];
  pr "@."

let ablations () =
  pr "== Ablations ==@.@.";
  ablation_clause_restriction ();
  ablation_domain_widening ();
  ablation_repair_filters ();
  ablation_gc ();
  ablation_hybrid ()

(* ------------------------------------------------------------------ *)
(* Fault injection: invariants under loss, duplication, partitions     *)
(* ------------------------------------------------------------------ *)

(** Beyond the paper: the weak-consistency story stressed by a hostile
    network.  The Ticket workload (numeric invariants, the ones that
    break first under duplicate delivery) runs over a fault-injected
    network — per-message loss, duplication, heavy-tail reordering and
    a 10 s us-east↔eu-west partition — with anti-entropy recovering the
    losses.  Reported per plan: availability, violations, oversell,
    visibility-latency percentiles, delivery counters, and whether all
    replicas converged to identical state digests after heal. *)
let faultnet () =
  pr "== Fault injection: Ticket (IPA) on a faulty network ==@.";
  let mk_plan ?(loss = 0.0) ?(dup = 0.0) ?(partition = false) () =
    {
      Net.faults =
        { loss; duplication = dup; tail = 0.02; tail_factor = 8.0 };
      partitions =
        (if partition then
           [
             {
               Net.parts = ([ "us-east" ], [ "eu-west" ]);
               from_ms = 2_000.0;
               until_ms = 12_000.0;
             };
           ]
         else []);
    }
  in
  let scenarios =
    [
      ("no faults", Net.no_faults);
      ("1% loss", mk_plan ~loss:0.01 ());
      ("10% loss", mk_plan ~loss:0.10 ());
      ("1% loss+dup, 10s partition",
       mk_plan ~loss:0.01 ~dup:0.01 ~partition:true ());
    ]
  in
  pr "%-28s %8s %6s %8s %8s %8s %5s@." "plan" "avail" "viol" "oversold"
    "vis-p50" "vis-p95" "conv";
  List.iter
    (fun (label, plan) ->
      let seed = 97 in
      let engine = Engine.create () in
      let net = Net.create ~seed ~plan () in
      let cluster = Cluster.create regions in
      let cfg =
        Config.create ~sync_interval_ms:250.0 ~mode:Config.Local ~engine ~net
          ~cluster ()
      in
      let app = Ticket.create ~initial_stock:2000 Ticket.Ipa in
      let params =
        {
          Ticket.n_events = 5;
          buy_ratio = 0.5;
          restock_ratio = 0.0;
          restock_amount = 0;
        }
      in
      Ticket.seed_data app params cluster;
      Engine.run_until engine 500.0;
      let w =
        {
          Driver.clients_per_region = 4;
          duration_ms = 8_000.0;
          warmup_ms = 1_000.0;
          think_time_ms = 0.0;
          only_region = None;
          next_op = Ticket.next_op app params;
        }
      in
      let m = Driver.run ~seed cfg w in
      (* extra settle beyond the driver's 10 s so capped-backoff
         retransmissions finish closing gaps after the partition heals *)
      Engine.run_until engine 40_000.0;
      let events =
        List.init params.Ticket.n_events (fun i -> Fmt.str "e%d" i)
      in
      let rep = List.hd cluster.Cluster.replicas in
      let oversold = Ticket.oversell_depth app rep events in
      let p50, p95 =
        match
          Metrics.percentiles [ 50.0; 95.0 ] m.Metrics.delivery.visibility
        with
        | [ a; b ] -> (a, b)
        | _ -> (0.0, 0.0)
      in
      pr "%-28s %7.1f%% %6d %8d %7.0fms %7.0fms %5s@." label
        (100.0 *. Metrics.availability m)
        m.Metrics.violations oversold p50 p95
        (if Cluster.quiescent cluster then "yes" else "NO");
      pr "%-28s   %a@." "" Metrics.pp_delivery m)
    scenarios;
  pr "@.(Convergence after heal relies on exactly-once delivery plus\
      @. anti-entropy; dup-suppressed counts the duplicates the store\
      @. refused to re-apply — each one would have been a phantom\
      @. counter update before this layer existed.)@."

(* ------------------------------------------------------------------ *)
(* Fault tolerance (§5.2.5)                                            *)
(* ------------------------------------------------------------------ *)

(** §5.2.5: "our approach is fault-tolerant as a client can execute
    operations as long as it can access a single server.  In Indigo, if
    a server that holds the necessary reservation becomes unavailable,
    the operation cannot be executed."  We fail the us-east region for
    three seconds in the middle of a Tournament run. *)
let fault () =
  pr "== Fault tolerance: us-east outage from t=2.5s to t=5.5s ==@.";
  pr "%-8s %14s %12s %10s@." "system" "availability" "lat[ms]" "failures";
  List.iter
    (fun sys ->
      let env = make_env ~seed:33 sys in
      let variant =
        match sys with Ipa -> Tournament.Ipa | _ -> Tournament.Causal
      in
      let app = Tournament.create variant in
      let params = Tournament.default_params in
      Tournament.seed_data app params env.cluster;
      Engine.run_until env.engine 500.0;
      Engine.schedule env.engine ~delay:2_000.0 (fun () ->
          Config.fail_region env.cfg "us-east" ~for_ms:3_000.0);
      let w =
        {
          Driver.clients_per_region = 4;
          duration_ms = 7_000.0;
          warmup_ms = 500.0;
          think_time_ms = 1.0;
          only_region = None;
          next_op = Tournament.next_op app params;
        }
      in
      let m = Driver.run ~seed:33 env.cfg w in
      pr "%-8s %13.1f%% %12.2f %10d@." (sys_name sys)
        (100.0 *. Metrics.availability m)
        (Metrics.mean_latency m ())
        m.Metrics.failures)
    [ Ipa; Indigo; Strong ];
  pr "@.(IPA stays available: clients of the failed region use the next\
      @. closest replica at WAN latency; Indigo operations whose\
      @. reservations live on the failed server cannot run; Strong loses\
      @. all updates while its primary is down.)@."

(* ------------------------------------------------------------------ *)
(* Fast-path replication runtime (interning, digest cache, truncation) *)
(* ------------------------------------------------------------------ *)

(** One closed replication run, driven directly through
    {!Cluster.broadcast_now} (no sim engine — this measures the raw
    store runtime, not the latency model): round-robin commits of
    [batch]-update transactions cycling over a seeded key population, a
    cluster-wide convergence poll after {e every} commit (the cost the
    incremental digests target), periodic anti-entropy and gc (stable
    truncation), and every 17th batch withheld from one destination so
    recovery from the batch log stays on the measured path. *)
type runtime_result = {
  rt_wall_s : float;
  rt_quiesce_s : float;  (** spent inside the per-commit quiescence polls *)
  rt_quiescent_polls : int;  (** polls that observed full convergence *)
  rt_batches : int;  (** committed + remotely delivered, cluster-wide *)
  rt_retransmitted : int;
  rt_log_final : int;  (** batch-log entries retained, cluster-wide *)
  rt_log_hwm : int;  (** largest per-replica retained log *)
  rt_log_truncated : int;  (** entries dropped as causally stable *)
  rt_digests : string list;  (** final exact per-replica state digests *)
  rt_converged : bool;
}

let runtime_population = 768

let runtime_run ~(replicas : int) ~(batch : int) ~(batches : int) () :
    runtime_result =
  let c =
    Cluster.create
      (List.init replicas (fun i ->
           (Fmt.str "dc-%d" i, Fmt.str "region-%d" (i mod 3))))
  in
  let reps = Array.of_list c.Cluster.replicas in
  (* key strings are workload input, not system under test: precompute
     them so the measured path is the store, not the formatter *)
  let keys =
    Array.init runtime_population (fun i -> Fmt.str "obj-%03d" i)
  in
  let key i = keys.(i mod runtime_population) in
  let commit_batch (r : Replica.t) ~start ~k =
    let tx = Txn.begin_ r in
    for j = 0 to k - 1 do
      let key = key (start + j) in
      let ctr = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Ipa_crdt.Pncounter.prepare ctr ~rep:r.Replica.id 1))
    done;
    Option.get (Txn.commit tx)
  in
  (* seed the full key population (untimed warmup): the baseline digest
     re-renders all of it on every poll, the fast path only the keys the
     last commit touched *)
  let seeded = ref 0 in
  while !seeded < runtime_population do
    let k = min 64 (runtime_population - !seeded) in
    Cluster.broadcast_now c (commit_batch reps.(0) ~start:!seeded ~k);
    seeded := !seeded + k
  done;
  let resend ~src:_ ~dst b = Replica.receive dst b in
  let s = Sync.create c in
  let now = ref 0.0 in
  let quiescent_polls = ref 0 in
  let quiesce_s = ref 0.0 in
  let cursor = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to batches do
    let origin = reps.(i mod replicas) in
    let b = commit_batch origin ~start:!cursor ~k:batch in
    cursor := !cursor + batch;
    (* every 17th batch is withheld from one destination: later batches
       from the same origin buffer behind the gap there until
       anti-entropy retransmits from the origin's log *)
    (* the +1 keeps the victim from systematically coinciding with the
       origin (e.g. 17 ≡ 1 mod 8 would make them always equal) *)
    let victim = if i mod 17 = 0 then ((i / 17) + 1) mod replicas else -1 in
    Array.iteri
      (fun j (dst : Replica.t) ->
        if dst.Replica.id <> origin.Replica.id && j <> victim then
          Replica.receive dst b)
      reps;
    (* the convergence poll the fast path is for *)
    let q0 = Unix.gettimeofday () in
    if Cluster.quiescent c then incr quiescent_polls;
    quiesce_s := !quiesce_s +. (Unix.gettimeofday () -. q0);
    if i mod 32 = 0 then begin
      now := !now +. 500.0;
      ignore (Sync.round s ~now:!now ~send:resend)
    end;
    if i mod 64 = 0 then
      Array.iter (fun r -> ignore (Replica.gc r)) reps
  done;
  (* drain: close the remaining gaps, then let truncation catch up *)
  let rounds = ref 0 in
  while (not (Cluster.quiescent c)) && !rounds < 100 do
    now := !now +. 500.0;
    ignore (Sync.round s ~now:!now ~send:resend);
    incr rounds
  done;
  Array.iter (fun r -> ignore (Replica.gc r)) reps;
  let wall = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  {
    rt_wall_s = wall;
    rt_quiesce_s = !quiesce_s;
    rt_quiescent_polls = !quiescent_polls;
    rt_batches =
      sum (fun (r : Replica.t) -> r.Replica.committed)
      + sum (fun (r : Replica.t) -> r.Replica.delivered);
    rt_retransmitted = s.Sync.retransmitted;
    rt_log_final = sum (fun (r : Replica.t) -> r.Replica.log_size);
    rt_log_hwm =
      Array.fold_left
        (fun acc (r : Replica.t) -> max acc r.Replica.log_hwm)
        0 reps;
    rt_log_truncated = sum (fun (r : Replica.t) -> r.Replica.log_truncated);
    rt_digests =
      Array.to_list (Array.map (fun r -> Replica.state_digest r) reps);
    rt_converged = Cluster.quiescent c;
  }

(** The fast-path runtime benchmark: every (replica count, batch size)
    configuration runs the identical schedule twice — all fast paths on,
    then all off — asserts the runs are observably equivalent
    (bit-identical final state digests, same convergence outcomes and
    batch counts) and reports throughput, quiescence-poll cost and
    batch-log footprint.  Writes [BENCH_RUNTIME.json] next to the one
    BENCH line it prints per configuration. *)
let runtime ?(quick = false) () =
  pr "== Fast-path replication runtime: on vs off ==@.";
  let configs =
    if quick then [ (3, 8) ]
    else
      List.concat_map
        (fun n -> List.map (fun k -> (n, k)) [ 1; 8; 64 ])
        [ 3; 5; 8 ]
  in
  let batches = if quick then 192 else 768 in
  pr "%-14s %9s %9s %8s %11s %11s %7s %7s %6s@." "config" "on[s]" "off[s]"
    "speedup" "batch/s-on" "batch/s-off" "trunc" "logmax" "ident";
  let rows = ref [] in
  let on_total = ref 0.0 and off_total = ref 0.0 in
  List.iter
    (fun (n, k) ->
      (* the schedule is deterministic, so every trial of a mode is the
         same computation; report the minimum wall per mode — the trial
         least disturbed by unrelated load on the shared machine.  The
         equivalence assertions below hold for any on/off pair. *)
      let trials = if quick then 1 else 3 in
      let best mode =
        let run () =
          Fastpath.with_all mode (fun () ->
              runtime_run ~replicas:n ~batch:k ~batches ())
        in
        let best = ref (run ()) in
        for _ = 2 to trials do
          let r = run () in
          if r.rt_wall_s < !best.rt_wall_s then best := r
        done;
        !best
      in
      let on = best true in
      let off = best false in
      if on.rt_digests <> off.rt_digests then
        failwith "runtime: fast paths changed the replicated state";
      if
        on.rt_converged <> off.rt_converged
        || on.rt_batches <> off.rt_batches
        || on.rt_quiescent_polls <> off.rt_quiescent_polls
      then failwith "runtime: fast paths changed an observable outcome";
      if not on.rt_converged then
        failwith "runtime: cluster failed to converge";
      if on.rt_log_truncated = 0 then
        failwith "runtime: stable truncation never fired";
      on_total := !on_total +. on.rt_wall_s;
      off_total := !off_total +. off.rt_wall_s;
      let tput (r : runtime_result) =
        float_of_int r.rt_batches /. r.rt_wall_s
      in
      let speedup = tput on /. tput off in
      pr "%dx%-12d %9.3f %9.3f %7.1fx %11.0f %11.0f %7d %7d %6s@." n k
        on.rt_wall_s off.rt_wall_s speedup (tput on) (tput off)
        on.rt_log_truncated on.rt_log_hwm "yes";
      let row =
        bench_row ~experiment:"runtime"
          [
            ("replicas", I n);
            ("batch", I k);
            ("batches_total", I on.rt_batches);
            ("wall_s", Fd (on.rt_wall_s, 4));
            ("wall_s_baseline", Fd (off.rt_wall_s, 4));
            ("speedup", Fd (speedup, 2));
            ("batches_per_s", Fd (tput on, 0));
            ("batches_per_s_baseline", Fd (tput off, 0));
            ("quiesce_s", Fd (on.rt_quiesce_s, 4));
            ("quiesce_s_baseline", Fd (off.rt_quiesce_s, 4));
            ("quiescent_polls", I on.rt_quiescent_polls);
            ("retransmitted", I on.rt_retransmitted);
            ("log_final", I on.rt_log_final);
            ("log_hwm", I on.rt_log_hwm);
            ("log_truncated", I on.rt_log_truncated);
            ("converged", B on.rt_converged);
            ("identical", B true);
          ]
      in
      rows := row :: !rows)
    configs;
  let aggregate = !off_total /. !on_total in
  pr "@.aggregate speedup (sum of baseline walls / sum of fast walls): \
      %.1fx@." aggregate;
  write_bench_json ~file:"BENCH_RUNTIME.json" ~experiment:"runtime"
    [ ("quick", B quick); ("aggregate_speedup", Fd (aggregate, 2)) ]
    (List.rev !rows);
  pr "(wrote BENCH_RUNTIME.json; both modes replay the identical \
      schedule and@. must produce bit-identical per-replica state \
      digests — the fast paths are@. observably free.)@."

(* ------------------------------------------------------------------ *)
(* Scale: million-key sharded store + digest-tree anti-entropy         *)
(* ------------------------------------------------------------------ *)

(** The sharded-store scale experiment.  A three-replica cluster with a
    hash-sharded keyspace converges a million-key Zipfian workload,
    while a single-shard "flat" shadow replica is fed the identical
    batch stream — at the end both layouts must produce bit-identical
    state digests (sharding is observably free).  Then a
    divergence-localization sweep: [k] keys are updated at one replica
    without broadcasting and {!Sync.divergent_keys} must find exactly
    those [k] keys by descending only the shards whose rolling digests
    disagree — cost proportional to the divergence, not to the million
    keys.  Writes [BENCH_SCALE.json]. *)
let scale ?(quick = false) () =
  pr "== Scale: sharded million-key store, digest-tree anti-entropy ==@.";
  let n_keys = if quick then 50_000 else 1 lsl 20 in
  let shards = if quick then 256 else 1024 (* ≈ sqrt n_keys *) in
  let theta = 0.99 in
  let c =
    Cluster.create ~shards
      [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]
  in
  let reps = Array.of_list c.Cluster.replicas in
  (* the flat shadow: one shard, fed every batch the cluster commits *)
  let flat = Replica.create ~shards:1 "flat" in
  let broadcast b =
    Cluster.broadcast_now c b;
    Replica.receive flat b
  in
  (* key strings are workload input, not system under test *)
  let keys = Array.init n_keys (fun i -> Printf.sprintf "k-%07d" i) in
  let commit_ranks (r : Replica.t) (ranks : int array) ~(from : int)
      ~(len : int) =
    let tx = Txn.begin_ r in
    for j = from to from + len - 1 do
      let key = keys.(ranks.(j)) in
      let ctr = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Ipa_crdt.Pncounter.prepare ctr ~rep:r.Replica.id 1))
    done;
    Option.get (Txn.commit tx)
  in
  (* phase 1 — populate: seed every key so the store really holds
     [n_keys] live objects (a Zipfian stream alone never reaches the
     tail) *)
  let seed_batch = 512 in
  let t0 = Unix.gettimeofday () in
  let all_ranks = Array.init n_keys (fun i -> i) in
  let seeded = ref 0 in
  let seed_batches = ref 0 in
  while !seeded < n_keys do
    let len = min seed_batch (n_keys - !seeded) in
    broadcast (commit_ranks reps.(0) all_ranks ~from:!seeded ~len);
    seeded := !seeded + len;
    incr seed_batches
  done;
  let populate_s = Unix.gettimeofday () -. t0 in
  pr "populate: %d keys in %d batches, %.2fs (%.0f keys/s)@." n_keys
    !seed_batches populate_s
    (float_of_int n_keys /. populate_s);
  (* phase 2 — skewed update traffic from both workload generators:
     an open-loop Poisson stream and a closed-loop client population,
     drawn over the same Zipfian popularity ranking *)
  let z = Ipa_sim.Workload.zipf ~theta n_keys in
  let horizon_ms = if quick then 4_000.0 else 40_000.0 in
  let ev_open =
    Ipa_sim.Workload.open_loop
      ~rng:(Ipa_sim.Rng.create 0xA5CA1E)
      ~rate_per_s:2_000.0 ~horizon_ms ~clients:12 z
  in
  let ev_closed =
    Ipa_sim.Workload.closed_loop
      ~rng:(Ipa_sim.Rng.create 0x5CA1ED)
      ~clients:24 ~think_ms:12.0 ~horizon_ms z
  in
  let events =
    Array.of_list
      (List.map
         (fun (e : Ipa_sim.Workload.event) -> e.Ipa_sim.Workload.rank)
         (ev_open @ ev_closed))
  in
  let txn_size = 64 in
  let polls = ref 0 and quiescent_polls = ref 0 in
  let t0 = Unix.gettimeofday () in
  let off = ref 0 and batch_i = ref 0 in
  while !off < Array.length events do
    let len = min txn_size (Array.length events - !off) in
    broadcast (commit_ranks reps.(!batch_i mod 3) events ~from:!off ~len);
    off := !off + len;
    incr batch_i;
    if !batch_i mod 64 = 0 then begin
      incr polls;
      if Cluster.quiescent c then incr quiescent_polls
    end
  done;
  let update_s = Unix.gettimeofday () -. t0 in
  pr "zipfian: %d open + %d closed events in %d txns, %.2fs (%.0f \
      updates/s; %d/%d polls quiescent)@."
    (List.length ev_open) (List.length ev_closed) !batch_i update_s
    (float_of_int (Array.length events) /. update_s)
    !quiescent_polls !polls;
  (* phase 3 — convergence + flat-vs-sharded digest identity *)
  if not (Cluster.quiescent c) then
    failwith "scale: cluster failed to converge";
  if Replica.pending_count flat > 0 then
    failwith "scale: flat shadow has undelivered batches";
  let time f =
    let t = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t)
  in
  let _, quick_ms =
    time (fun () -> Replica.digest_equal reps.(0) flat)
  in
  let quick_identical = Replica.quick_digest reps.(0) = Replica.quick_digest flat in
  let d0, full_ms = time (fun () -> Replica.state_digest reps.(0)) in
  let flat_identical = d0 = Replica.state_digest flat in
  if not quick_identical then
    failwith "scale: rolling digest differs between sharded and flat";
  if not flat_identical then
    failwith "scale: state digest differs between sharded and flat";
  Array.iter
    (fun r ->
      if Replica.state_digest r <> d0 then
        failwith "scale: sharded replicas disagree")
    reps;
  pr "digests: %d-shard replicas == 1-shard shadow, bit-identical \
      (%d objects; rolling compare %.3fms, full render %.0fms)@."
    shards (Replica.obj_count reps.(0)) (quick_ms *. 1000.)
    (full_ms *. 1000.);
  let rows =
    ref
      [
        bench_row ~experiment:"scale"
          [
            ("phase", S "digest");
            ("objects", I (Replica.obj_count reps.(0)));
            ("shards", I shards);
            ("flat_identical", B flat_identical);
            ("quick_identical", B quick_identical);
            ("quick_compare_ms", Fd (quick_ms *. 1000., 4));
            ("full_render_ms", Fd (full_ms *. 1000., 1));
          ];
        bench_row ~experiment:"scale"
          [
            ("phase", S "zipfian");
            ("events_open", I (List.length ev_open));
            ("events_closed", I (List.length ev_closed));
            ("txns", I !batch_i);
            ("wall_s", Fd (update_s, 2));
            ("updates_per_s",
             Fd (float_of_int (Array.length events) /. update_s, 0));
            ("quiescent_polls", I !quiescent_polls);
            ("polls", I !polls);
          ];
        bench_row ~experiment:"scale"
          [
            ("phase", S "populate");
            ("keys", I n_keys);
            ("batches", I !seed_batches);
            ("wall_s", Fd (populate_s, 2));
            ("keys_per_s", Fd (float_of_int n_keys /. populate_s, 0));
          ];
      ]
  in
  (* phase 4 — divergence localization: update k fresh keys at one
     replica, withhold the batch, and let the digest-tree descent find
     exactly those keys without scanning the million *)
  List.iter
    (fun k ->
      let b = commit_ranks reps.(0) all_ranks ~from:0 ~len:k in
      let d, desc_s =
        time (fun () -> Sync.divergent_keys ~a:reps.(0) ~b:reps.(1))
      in
      let found = List.length d.Sync.divergent in
      if found <> k then
        failwith
          (Fmt.str "scale: expected %d divergent keys, descent found %d" k
             found);
      (* descent compares every shard digest, the sub-bucket digests of
         divergent shards, and then enumerates only keys routed to a
         divergent sub-bucket — so its bound is (divergent shards ×
         sub-buckets) + (divergent buckets × bucket size), never the
         whole keyspace while most buckets agree.  The factor 4 absorbs
         hash-routing imbalance in the per-bucket key count. *)
      let subs = Replica.sub_count reps.(0) in
      let bound =
        1 + shards
        + (min k shards * subs)
        + ((min k (shards * subs) + 1) * (4 * n_keys / (shards * subs)))
      in
      if d.Sync.nodes_visited > bound then
        failwith
          (Fmt.str "scale: descent visited %d nodes for %d divergent keys"
             d.Sync.nodes_visited k);
      if k <= 16 && d.Sync.nodes_visited * 10 > n_keys then
        failwith "scale: localization no better than a full scan";
      (* the sub-bucket level must keep even the widest row sublinear:
         at k = 4096 the two-level tree enumerated ~all leaves *)
      if (not quick) && k >= 4096 && d.Sync.nodes_visited * 2 >= n_keys then
        failwith "scale: wide-divergence localization no longer sublinear";
      (* heal: deliver the withheld batch and re-check convergence *)
      Cluster.broadcast_now c b;
      Replica.receive flat b;
      if not (Cluster.quiescent c) then
        failwith "scale: cluster failed to re-converge after localization";
      pr "localize: %5d divergent -> %8d/%d nodes visited (%.1f%% of \
          keyspace), %.2fms@."
        k d.Sync.nodes_visited n_keys
        (100.0 *. float_of_int d.Sync.nodes_visited /. float_of_int n_keys)
        (desc_s *. 1000.);
      rows :=
        bench_row ~experiment:"scale"
          [
            ("phase", S "localize");
            ("divergent", I k);
            ("found", I found);
            ("nodes_visited", I d.Sync.nodes_visited);
            ("keyspace", I n_keys);
            ("visited_frac", Fd (float_of_int d.Sync.nodes_visited
                                 /. float_of_int n_keys, 4));
            ("descent_ms", Fd (desc_s *. 1000., 2));
            ("reconverged", B true);
          ]
        :: !rows)
    [ 16; 256; 4096 ];
  write_bench_json ~file:"BENCH_SCALE.json" ~experiment:"scale"
    [
      ("quick", B quick);
      ("keys", I n_keys);
      ("shards", I shards);
      ("theta", F theta);
    ]
    (List.rev !rows);
  pr "(wrote BENCH_SCALE.json; the sharded and flat layouts replay the \
      identical@. batch stream and must digest bit-identically — \
      sharding is observably free.)@."

(* ------------------------------------------------------------------ *)
(* Durability: delta replication wire cost + WAL crash recovery        *)
(* ------------------------------------------------------------------ *)

(** Durability & delta-replication experiment (DESIGN.md §9), three
    phases: (1) wire cost of repairing a lagging replica under the
    three repair strategies over a large converged set plus hot
    counters — delta groups must come in at least 2x under full state;
    (2) WAL crash-recovery timing, demanding a bit-identical post-
    recovery digest; (3) a crash-armed fuzz campaign across the whole
    catalog.  Writes [BENCH_DURABILITY.json]. *)
let durability ?(quick = false) () =
  pr "== Durability: delta replication + WAL crash recovery ==@.";
  let rows = ref [] in
  let push r = rows := r :: !rows in
  (* ---- phase 1: repair wire cost --------------------------------- *)
  let n_bulk = if quick then 1_000 else 5_000 in
  let n_lag = if quick then 40 else 200 in
  let n_counters = 64 in
  let c = Cluster.create regions in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let add_many rep key ~from ~len =
    let tx = Txn.begin_ rep in
    for i = from to from + len - 1 do
      let s = Obj.as_awset (Txn.get tx key Obj.T_awset) in
      Txn.update tx key
        (Obj.Op_awset
           (Ipa_crdt.Awset.prepare_add s ~dot:(Txn.fresh_dot tx)
              (Printf.sprintf "el-%05d" i)))
    done;
    Option.get (Txn.commit tx)
  in
  let bump rep key n =
    let tx = Txn.begin_ rep in
    let ctr = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
    Txn.update tx key
      (Obj.Op_pncounter
         (Ipa_crdt.Pncounter.prepare ctr ~rep:rep.Replica.id n));
    Option.get (Txn.commit tx)
  in
  let ctr_key k = Printf.sprintf "ctr-%02d" k in
  (* converged bulk state: a big set + warmed hot counters everywhere *)
  let seeded = ref 0 in
  while !seeded < n_bulk do
    let len = min 100 (n_bulk - !seeded) in
    Cluster.broadcast_now c (add_many east "big" ~from:!seeded ~len);
    seeded := !seeded + len
  done;
  for k = 0 to n_counters - 1 do
    Cluster.broadcast_now c (bump east (ctr_key k) 10)
  done;
  (* the lag eu misses: a small tail of set adds + counter bumps *)
  for i = 0 to n_lag - 1 do
    Replica.receive west (add_many east "big" ~from:(n_bulk + i) ~len:1);
    Replica.receive west (bump east (ctr_key (i mod n_counters)) 1)
  done;
  let d_ref = Replica.state_digest east in
  if Replica.state_digest west <> d_ref then
    failwith "durability: op-application reference diverged";
  let snap = Cluster.snapshot c in
  let metrics = Metrics.create () in
  let run_mode name mode kind =
    Cluster.restore c snap;
    let eu = Cluster.replica c "dc-eu" in
    let s = Sync.create ~base_backoff_ms:1.0 c in
    let t0 = Unix.gettimeofday () in
    let st = Sync.repair s ~mode ~src:east ~dst:eu in
    let wall = Unix.gettimeofday () -. t0 in
    Metrics.record_sync_bytes metrics ~kind st.Sync.r_bytes;
    if Replica.state_digest eu <> d_ref then
      failwith ("durability: " ^ name ^ " repair failed to converge");
    pr "repair %-10s %9d bytes  %5d units  (%.2fms)@." name st.Sync.r_bytes
      st.Sync.r_units (wall *. 1000.);
    push
      (bench_row ~experiment:"durability"
         [
           ("phase", S "repair");
           ("mode", S name);
           ("bytes", I st.Sync.r_bytes);
           ("units", I st.Sync.r_units);
           ("accepted", I st.Sync.r_accepted);
           ("wall_ms", Fd (wall *. 1000., 2));
           ("converged", B true);
         ]);
    st.Sync.r_bytes
  in
  let b_batches = run_mode "batches" Sync.Batches `Batch in
  let b_state = run_mode "full_state" Sync.Full_state `State in
  let b_delta = run_mode "deltas" Sync.Deltas `Delta in
  if b_delta * 2 > b_state then
    failwith
      (Fmt.str
         "durability: delta repair not 2x under full state (%d vs %d bytes)"
         b_delta b_state);
  pr "delta sync ships %.1fx fewer bytes than full state (%.1fx vs raw \
      batches)@."
    (float_of_int b_state /. float_of_int b_delta)
    (float_of_int b_batches /. float_of_int b_delta);
  let dv = metrics.Metrics.delivery in
  push
    (bench_row ~experiment:"durability"
       [
         ("phase", S "metrics");
         ("sync_bytes_batch", I dv.Metrics.sync_bytes_batch);
         ("sync_bytes_state", I dv.Metrics.sync_bytes_state);
         ("sync_bytes_delta", I dv.Metrics.sync_bytes_delta);
         ("state_over_delta",
          Fd (float_of_int b_state /. float_of_int b_delta, 2));
       ]);
  (* ---- phase 2: WAL crash recovery ------------------------------- *)
  let wal_dir =
    let rec go n =
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ipa-bench-wal-%d-%d" (Unix.getpid ()) n)
      in
      if Sys.file_exists d then go (n + 1) else d
    in
    go 0
  in
  let c2 = Cluster.create regions in
  let reps2 = Array.of_list c2.Cluster.replicas in
  let ws =
    Array.map
      (fun (r : Replica.t) ->
        let w = Wal.create ~dir:wal_dir ~id:r.Replica.id () in
        Wal.attach w r;
        w)
      reps2
  in
  let n_ops = if quick then 500 else 5_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_ops - 1 do
    let rep = reps2.(i mod Array.length reps2) in
    let b =
      if i mod 3 = 0 then bump rep (ctr_key (i mod n_counters)) 1
      else add_many rep "wal-set" ~from:i ~len:1
    in
    Cluster.broadcast_now c2 b;
    (* periodic checkpoints so recovery replays snapshot + WAL tail *)
    if i > 0 && i mod (n_ops / 4) = 0 then Wal.checkpoint ws.(0) reps2.(0)
  done;
  let ingest_s = Unix.gettimeofday () -. t0 in
  (* flush, then crash: recovery must land bit-identically *)
  Wal.flush ws.(0);
  let d_before = Replica.state_digest reps2.(0) in
  Wal.crash ws.(0);
  let t0 = Unix.gettimeofday () in
  let rc = Wal.recover ws.(0) reps2.(0) in
  let recover_s = Unix.gettimeofday () -. t0 in
  let identical = Replica.state_digest reps2.(0) = d_before in
  if not identical then
    failwith "durability: WAL recovery digest not bit-identical";
  pr "recovery: %d ops (%d flushes, %.2fs ingest) -> snapshot=%b + %d \
      replayed in %.2fms, digest bit-identical@."
    n_ops ws.(0).Wal.flushes ingest_s rc.Wal.rec_snapshot rc.Wal.rec_replayed
    (recover_s *. 1000.);
  push
    (bench_row ~experiment:"durability"
       [
         ("phase", S "recovery");
         ("ops", I n_ops);
         ("snapshot", B rc.Wal.rec_snapshot);
         ("replayed", I rc.Wal.rec_replayed);
         ("skipped", I rc.Wal.rec_skipped);
         ("valid_bytes", I rc.Wal.rec_valid_bytes);
         ("recover_ms", Fd (recover_s *. 1000., 2));
         ("digest_identical", B identical);
       ]);
  Array.iter Wal.remove_files ws;
  (try Sys.rmdir wal_dir with Sys_error _ -> ());
  (* ---- phase 3: crash-armed fuzz campaign ------------------------ *)
  let open Ipa_check in
  let runs = if quick then 25 else 200 in
  pr "%-12s %8s %8s %9s@." "app" "runs" "failed" "wall[s]";
  List.iter
    (fun app ->
      let t0 = Unix.gettimeofday () in
      let r =
        Fuzz.campaign ~app ~repaired:true ~seed:1 ~runs ~crashes:2
          ~stop_on_failure:false ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      if r.Fuzz.failed_runs > 0 then
        failwith
          (Fmt.str "durability: %s failed %d crash-recovery schedules" app
             r.Fuzz.failed_runs);
      pr "%-12s %8d %8d %9.3f@." app r.Fuzz.runs r.Fuzz.failed_runs wall;
      push
        (bench_row ~experiment:"durability"
           [
             ("phase", S "crash_fuzz");
             ("app", S app);
             ("runs", I r.Fuzz.runs);
             ("crashes_per_run", I 2);
             ("failed", I r.Fuzz.failed_runs);
             ("wall_s", F wall);
           ]))
    Harness.app_names;
  write_bench_json ~file:"BENCH_DURABILITY.json" ~experiment:"durability"
    [
      ("quick", B quick);
      ("bulk_elements", I n_bulk);
      ("lag_updates", I (2 * n_lag));
      ("hot_counters", I n_counters);
      ("wal_ops", I n_ops);
      ("fuzz_runs_per_app", I runs);
    ]
    (List.rev !rows);
  pr "(wrote BENCH_DURABILITY.json)@."

(* ------------------------------------------------------------------ *)
(* Simulation fuzzing smoke (DESIGN.md §7)                             *)
(* ------------------------------------------------------------------ *)

(** Fuzzing smoke: a repaired sweep over the four catalog apps (every
    schedule must pass both oracles) plus the oracle-has-teeth check —
    the causal tournament baseline must yield an invariant violation
    that shrinks to a small counterexample whose replay reproduces the
    identical failing digest.  [--quick] trims the per-app schedule
    budget to CI size. *)
let fuzz ?(quick = false) () =
  let open Ipa_check in
  pr "== Simulation fuzzing: repaired sweep + oracle teeth ==@.";
  let runs = if quick then 25 else 200 in
  let ok = ref true in
  pr "%-12s %8s %8s %9s@." "app" "runs" "failed" "wall[s]";
  List.iter
    (fun app ->
      let t0 = Unix.gettimeofday () in
      let r =
        Fuzz.campaign ~app ~repaired:true ~seed:1 ~runs
          ~stop_on_failure:false ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      if r.Fuzz.failed_runs > 0 then ok := false;
      pr "%-12s %8d %8d %9.3f@." app r.Fuzz.runs r.Fuzz.failed_runs wall;
      ignore
        (bench_row ~experiment:"fuzz"
           [
             ("app", S app);
             ("repaired", B true);
             ("runs", I r.Fuzz.runs);
             ("failed", I r.Fuzz.failed_runs);
             ("wall_s", F wall);
           ]))
    Harness.app_names;
  if not !ok then failwith "fuzz: a repaired catalog app failed its oracle";
  (* teeth: the fuzzer must find the paper's tournament anomaly in the
     causal baseline, shrink it, and replay it bit-identically *)
  let t0 = Unix.gettimeofday () in
  let r =
    Fuzz.campaign ~app:"tournament" ~repaired:false ~seed:1 ~runs:50 ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match r.Fuzz.first with
  | None ->
      failwith
        "fuzz: causal tournament survived 50 schedules (oracle has no teeth)"
  | Some c ->
      let n = Trace.n_events c.Fuzz.trace in
      if n > 10 then
        failwith
          (Fmt.str "fuzz: counterexample did not shrink (%d events)" n);
      let rp = Fuzz.replay c.Fuzz.trace in
      if not rp.Fuzz.r_as_expected then
        failwith "fuzz: replay did not reproduce the failing digest";
      pr "@.teeth: causal tournament failed after %d schedule(s); \
          counterexample shrunk to %d event(s); replay digest %s \
          reproduced@."
        r.Fuzz.runs n rp.Fuzz.r_outcome.Oracle.digest;
      ignore
        (bench_row ~experiment:"fuzz"
           [
             ("app", S "tournament");
             ("repaired", B false);
             ("runs", I r.Fuzz.runs);
             ("shrunk_events", I n);
             ("replay_identical", B true);
             ("wall_s", F wall);
           ]))

(* ------------------------------------------------------------------ *)
(* Multicore engine: analysis + fuzzing at jobs = 1/2/4/8              *)
(* ------------------------------------------------------------------ *)

(** Multicore scaling experiment.  Runs the catalog analysis and a
    fuzzing sweep (repaired apps plus the unrepaired tournament
    baseline) at jobs = 1/2/4/8 over the same domain pool the CLI's
    [--jobs] flag uses, asserts every parallel run is bit-identical to
    the jobs=1 baseline — resolutions, flagged pairs, patched specs,
    failing-seed sets and first counterexample traces — and writes the
    per-jobs speedup rows to [BENCH_PARALLEL.json].  The header records
    [host_cores]: on a single-core container the domains serialize and
    speedup stays near 1.0x, so the identity assertions are the portable
    part of the experiment and the speedups are meaningful only when
    [host_cores] exceeds the jobs level. *)
let parallel ?(quick = false) () =
  let open Ipa_core in
  let open Ipa_check in
  pr "== Multicore engine: analysis + fuzzing at jobs = 1/2/4/8 ==@.";
  let apps =
    if quick then
      List.filter (fun (n, _) -> n = "ticket" || n = "tournament") catalog_apps
    else catalog_apps
  in
  let fuzz_runs = if quick then 24 else 120 in
  let teeth_runs = if quick then 24 else 50 in
  let analysis_at jobs =
    time_it (fun () ->
        List.map
          (fun (_, mk) ->
            analysis_summary (Ipa.run ~jobs ~ctx:(Anactx.create ()) (mk ())))
          apps)
  in
  (* everything a campaign reports except wall time *)
  let fuzz_summary (r : Fuzz.report) =
    ( r.Fuzz.app,
      r.Fuzz.repaired,
      r.Fuzz.runs,
      r.Fuzz.failed_runs,
      r.Fuzz.failed_seeds,
      Option.map (fun c -> Trace.to_string c.Fuzz.trace) r.Fuzz.first )
  in
  let campaigns =
    List.map (fun (name, _) -> (name, true, fuzz_runs)) apps
    @ [ ("tournament", false, teeth_runs) ]
  in
  let fuzz_at jobs =
    time_it (fun () ->
        List.map
          (fun (app, repaired, runs) ->
            fuzz_summary
              (Fuzz.campaign ~app ~repaired ~seed:1 ~runs
                 ~stop_on_failure:false ~jobs ()))
          campaigns)
  in
  pr "%-6s %12s %12s %12s %9s %6s@." "jobs" "analysis[s]" "fuzz[s]" "total[s]"
    "speedup" "ident";
  let base = ref None in
  let rows = ref [] in
  let jobs4_speedup = ref 1.0 in
  List.iter
    (fun jobs ->
      let a_sum, a_s = analysis_at jobs in
      let f_sum, f_s = fuzz_at jobs in
      (match !base with
      | None -> base := Some (a_sum, f_sum, a_s +. f_s)
      | Some (a0, f0, _) ->
          if a_sum <> a0 then
            failwith
              (Fmt.str
                 "parallel: analysis at jobs=%d diverged from jobs=1" jobs);
          if f_sum <> f0 then
            failwith
              (Fmt.str
                 "parallel: fuzzing at jobs=%d diverged from jobs=1" jobs));
      let total = a_s +. f_s in
      let base_total =
        match !base with Some (_, _, t) -> t | None -> total
      in
      let speedup = base_total /. total in
      if jobs = 4 then jobs4_speedup := speedup;
      pr "%-6d %12.3f %12.3f %12.3f %8.2fx %6s@." jobs a_s f_s total speedup
        "yes";
      let row =
        bench_row ~experiment:"parallel"
          [
            ("jobs", I jobs);
            ("host_cores", I (Domain.recommended_domain_count ()));
            ("analysis_s", F a_s);
            ("fuzz_s", F f_s);
            ("wall_s", F total);
            ("speedup", Fd (speedup, 2));
            ("identical", B true);
          ]
      in
      rows := row :: !rows)
    [ 1; 2; 4; 8 ];
  write_bench_json ~file:"BENCH_PARALLEL.json" ~experiment:"parallel"
    [
      ("quick", B quick);
      ("host_cores", I (Domain.recommended_domain_count ()));
      ("jobs4_speedup", Fd (!jobs4_speedup, 2));
    ]
    (List.rev !rows);
  (* the identity assertions above ran unconditionally; the speedup
     expectation only means something when the host actually grants the
     cores — on fewer the domains serialize and jobs=4 can only lose *)
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then begin
    if !jobs4_speedup < 1.0 then
      failwith
        (Fmt.str
           "parallel: jobs=4 is %.2fx on a %d-core host — the fan-out \
            must not lose to sequential when the cores exist"
           !jobs4_speedup cores)
  end
  else
    pr
      "(speedup expectation skipped: host_cores=%d < 4 — identity \
       assertions were still enforced)@."
      cores;
  pr
    "@.(wrote BENCH_PARALLEL.json; every jobs level produced bit-identical\
     @. reports and failing-seed sets — parallelism is observably free.\
     @. host_cores=%d: speedups only materialize when the host grants more\
     @. cores than 1.)@."
    cores

(* ------------------------------------------------------------------ *)
(* Incremental analysis: the single-operation edit loop                *)
(* ------------------------------------------------------------------ *)

(** Edit-loop benchmark for the incremental analysis (the [serve]
    workflow, measured through the library API).  Grows Twitter's pair
    matrix with {!Ipa_check.Specmut.grow} (same signature, so the
    context survives), warms two persistent sessions (jobs=1 and
    jobs=4), then applies a stream of cumulative single-operation edits;
    after each edit the spec is re-analyzed in the warm sessions and
    from scratch in a cold one.  Asserts every report bit-identical
    (warm vs cold, at both jobs levels) and that the warm sessions'
    total SAT solves stay within 20% of from-scratch — the
    content-addressed obligation cache must confine re-solving to the
    obligations each edit actually reaches.  Writes one row per edit to
    [BENCH_INCR.json]. *)
let incr ?(quick = false) () =
  let open Ipa_core in
  let open Ipa_check in
  pr "== Incremental analysis: single-operation edit loop ==@.";
  let rng = Ipa_sim.Rng.create 11 in
  let grown_ops = if quick then 8 else 20 in
  let edits = if quick then 3 else 8 in
  let max_iterations = 512 in
  let spec = Specmut.grow rng (Ipa_spec.Catalog.twitter ()) grown_ops in
  let n_ops = List.length spec.Ipa_spec.Types.operations in
  pr "spec: twitter grown to %d operations (%d pairs), %d edits@." n_ops
    (n_ops * (n_ops + 1) / 2)
    edits;
  let ctx1 = Anactx.create () and ctx4 = Anactx.create () in
  let r0, warm_s =
    time_it (fun () -> Ipa.run ~max_iterations ~ctx:ctx1 ~jobs:1 spec)
  in
  ignore (Ipa.run ~max_iterations ~ctx:ctx4 ~jobs:4 spec);
  pr "warm-up: %d solves, %d resolutions, %.2fs@."
    (Anactx.stats ctx1).Anactx.sat_calls
    (List.length r0.Ipa.resolutions)
    warm_s;
  pr "%-6s %-22s %9s %9s %7s %7s %10s %10s@." "edit" "op" "solves"
    "scratch" "ratio" "reuse" "incr[s]" "scratch[s]";
  let rows = ref [] in
  let tot_inc = ref 0 and tot_scr = ref 0 in
  List.iteri
    (fun i (espec, name) ->
      let s1 = Anactx.stats ctx1 in
      let solves0 = s1.Anactx.sat_calls in
      let oh0 = s1.Anactx.oblig_hits
      and om0 = s1.Anactx.oblig_misses
      and ch0 = s1.Anactx.case_hits
      and cm0 = s1.Anactx.case_misses in
      let r_inc, inc_s =
        time_it (fun () -> Ipa.run ~max_iterations ~ctx:ctx1 ~jobs:1 espec)
      in
      let r_inc4, _ =
        time_it (fun () -> Ipa.run ~max_iterations ~ctx:ctx4 ~jobs:4 espec)
      in
      let ctx_cold = Anactx.create () in
      let r_scr, scr_s =
        time_it (fun () ->
            Ipa.run ~max_iterations ~ctx:ctx_cold ~jobs:1 espec)
      in
      let str_inc = Report.report_to_string r_inc in
      if str_inc <> Report.report_to_string r_scr then
        failwith
          (Fmt.str
             "incr: edit %d (%s): warm re-analysis diverged from \
              from-scratch"
             i name);
      if Report.report_to_string r_inc4 <> str_inc then
        failwith
          (Fmt.str "incr: edit %d (%s): jobs=4 diverged from jobs=1" i name);
      let s1 = Anactx.stats ctx1 in
      let solves_inc = s1.Anactx.sat_calls - solves0 in
      let solves_scr = (Anactx.stats ctx_cold).Anactx.sat_calls in
      let oh = s1.Anactx.oblig_hits - oh0
      and om = s1.Anactx.oblig_misses - om0
      and ch = s1.Anactx.case_hits - ch0
      and cm = s1.Anactx.case_misses - cm0 in
      let reuse =
        let total = oh + om + ch + cm in
        if total = 0 then 0.0 else float_of_int (oh + ch) /. float_of_int total
      in
      let ratio =
        float_of_int solves_inc /. float_of_int (max 1 solves_scr)
      in
      tot_inc := !tot_inc + solves_inc;
      tot_scr := !tot_scr + solves_scr;
      pr "%-6d %-22s %9d %9d %6.1f%% %6.1f%% %10.3f %10.3f@." i name
        solves_inc solves_scr (100. *. ratio) (100. *. reuse) inc_s scr_s;
      let row =
        bench_row ~experiment:"incr"
          [
            ("edit", I i);
            ("op", S name);
            ("solves_incr", I solves_inc);
            ("solves_scratch", I solves_scr);
            ("solve_ratio", Fd (ratio, 3));
            ("reuse_rate", Fd (reuse, 3));
            ("wall_s_incr", F inc_s);
            ("wall_s_scratch", F scr_s);
            ("identical", B true);
          ]
      in
      rows := row :: !rows)
    (Specmut.edit_stream rng spec edits);
  let total_ratio =
    float_of_int !tot_inc /. float_of_int (max 1 !tot_scr)
  in
  if total_ratio > 0.20 then
    failwith
      (Fmt.str
         "incr: warm re-analysis solved %.1f%% of the from-scratch SAT \
          queries — the obligation cache must keep single-operation \
          edits under 20%%"
         (100. *. total_ratio));
  write_bench_json ~file:"BENCH_INCR.json" ~experiment:"incr"
    [
      ("quick", B quick);
      ("host_cores", I (Domain.recommended_domain_count ()));
      ("ops", I n_ops);
      ("edits", I edits);
      ("solve_ratio", Fd (total_ratio, 3));
      ("solve_ratio_bound", Fd (0.20, 2));
    ]
    (List.rev !rows);
  pr
    "@.(wrote BENCH_INCR.json; warm re-analysis after a single-operation\
     @. edit solved %.1f%% of the from-scratch queries (bound 20%%), with\
     @. reports bit-identical to from-scratch at jobs=1 and jobs=4.)@."
    (100. *. total_ratio)

(* ------------------------------------------------------------------ *)
(* Consistency-typed reads (DESIGN.md "Consistency-typed reads")       *)
(* ------------------------------------------------------------------ *)

(** Staleness bound vs read latency and error: identical Zipfian
    open-loop write streams run once per read level; probe reads from a
    us-east client measure client-perceived latency and the absolute
    error against an omniscient flat shadow replica (which receives
    every committed batch the instant it commits — the strongly
    consistent value).  Then the escrow-interval containment stats and
    the read-oracle fuzz sweep (interval containment + staleness bound
    judged on every schedule).  Emits BENCH_CONSISTENCY.json; fails hard
    if any interval escapes, any fuzz schedule fails, or the
    large-budget bounded read is not ≥5× cheaper than strong. *)
let consistency ?(quick = false) () =
  pr "== Consistency-typed reads: staleness bound vs latency/error ==@.";
  let horizon = if quick then 4_000.0 else 20_000.0 in
  let n_keys = 64 in
  let theta = 0.99 in
  let probe_every = 25.0 in
  let warmup = 500.0 in
  let region_names = Array.of_list (List.map snd regions) in
  (* one pass per level over the byte-identical write stream *)
  let run_level (level : Config.read_level) =
    let env = make_env ~seed:42 Causal in
    let cfg = env.cfg in
    let shadow = Replica.create ~region:"shadow" "shadow" in
    shadow.Replica.peers <- List.map fst regions;
    let keys = Array.init n_keys (fun i -> Fmt.str "k%04d" i) in
    let truth key =
      match Replica.peek shadow key with
      | Some o -> Ipa_crdt.Pncounter.value (Obj.as_pncounter o)
      | None -> 0
    in
    let write rank : Config.op_exec =
      {
        Config.op_name = "w";
        is_update = true;
        reservations = [];
        run =
          (fun rep ->
            let tx = Txn.begin_ rep in
            let key = keys.(rank) in
            let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
            Txn.update tx key
              (Obj.Op_pncounter
                 (Ipa_crdt.Pncounter.prepare c ~rep:rep.Replica.id 1));
            match Txn.commit tx with
            | Some b ->
                Replica.receive shadow b;
                Config.outcome (Some b)
            | None -> Config.outcome None);
      }
    in
    let z = Workload.zipf ~theta n_keys in
    let evs =
      Workload.open_loop ~rng:(Rng.create 0xC0FFEE) ~rate_per_s:400.0
        ~horizon_ms:horizon ~clients:6 z
    in
    List.iter
      (fun (e : Workload.event) ->
        Engine.schedule env.engine ~delay:e.Workload.at_ms (fun () ->
            Config.execute cfg
              ~client_region:region_names.(e.Workload.client mod 3)
              (write e.Workload.rank)
              ~complete:(fun _ _ -> ())))
      evs;
    (* probes: each carries its own observation cell, so overlapping
       in-flight reads (strong reads outlive the probe interval) never
       clobber each other *)
    let lats = ref [] and errs = ref [] in
    let rng_r = Rng.create 0xBEEF in
    let n_probes = int_of_float ((horizon -. warmup) /. probe_every) in
    for i = 0 to n_probes - 1 do
      let at = warmup +. (float_of_int i *. probe_every) in
      Engine.schedule env.engine ~delay:at (fun () ->
          let rank = Workload.draw rng_r z in
          let observed = ref 0 and want = ref 0 in
          let op =
            {
              Config.op_name = "r";
              is_update = false;
              reservations = [];
              run =
                (fun rep ->
                  let key = keys.(rank) in
                  (observed :=
                     match Replica.peek rep key with
                     | Some o ->
                         Ipa_crdt.Pncounter.value (Obj.as_pncounter o)
                     | None -> 0);
                  want := truth key;
                  Config.outcome None);
            }
          in
          Config.execute_read cfg ~client_region:"us-east" ~level op
            ~complete:(fun lat _ ->
              lats := lat :: !lats;
              errs := float_of_int (abs (!observed - !want)) :: !errs))
    done;
    Engine.run_until env.engine (horizon +. 5_000.0);
    (!lats, !errs)
  in
  let levels =
    let bounded =
      List.map
        (fun d -> ("bounded", Some d, Config.RL_bounded d))
        (if quick then [ 0.0; 100.0; 1000.0 ]
         else [ 0.0; 10.0; 50.0; 100.0; 250.0; 1000.0 ])
    in
    (("weak", None, Config.RL_weak) :: bounded)
    @ [ ("strong", None, Config.RL_strong) ]
  in
  let mean l =
    if l = [] then 0.0
    else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  pr "%-8s %10s %6s %9s %9s %9s %9s %9s@." "level" "bound[ms]" "reads"
    "mean[ms]" "p95[ms]" "p99[ms]" "err" "max_err";
  let sweep_means = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (name, bound, level) ->
        let lats, errs = run_level level in
        let m = mean lats in
        let p95 = Metrics.percentile 95.0 lats
        and p99 = Metrics.percentile 99.0 lats in
        let err = mean errs in
        let maxe = List.fold_left max 0.0 errs in
        let label =
          match bound with
          | Some d -> Fmt.str "%s@%g" name d
          | None -> name
        in
        Hashtbl.replace sweep_means label m;
        pr "%-8s %10s %6d %9.2f %9.2f %9.2f %9.3f %9.0f@." name
          (match bound with Some d -> Fmt.str "%g" d | None -> "-")
          (List.length lats) m p95 p99 err maxe;
        bench_row ~experiment:"consistency"
          ([ ("phase", S "sweep"); ("level", S name) ]
          @ (match bound with
            | Some d -> [ ("staleness_ms", Fd (d, 0)) ]
            | None -> [])
          @ [
              ("reads", I (List.length lats));
              ("mean_ms", Fd (m, 3));
              ("p95_ms", Fd (p95, 3));
              ("p99_ms", Fd (p99, 3));
              ("mean_abs_err", Fd (err, 4));
              ("max_abs_err", Fd (maxe, 0));
            ]))
      levels
  in
  let strong_mean = Hashtbl.find sweep_means "strong" in
  let bounded_mean = Hashtbl.find sweep_means "bounded@1000" in
  let speedup = strong_mean /. Float.max bounded_mean 1e-9 in
  pr "strong/bounded@1000 latency ratio: %.1fx@." speedup;
  if speedup < 5.0 then
    failwith
      (Fmt.str
         "consistency: bounded-staleness reads are only %.1fx cheaper \
          than strong (must be >= 5x)"
         speedup);
  (* escrow interval containment under concurrent inc/dec with delayed,
     out-of-order delivery: every probed interval at every replica must
     contain the true committed value *)
  let interval_rows =
    let cluster = Cluster.create regions in
    let reps = Array.of_list cluster.Cluster.replicas in
    let shadow = Replica.create ~region:"shadow" "shadow" in
    shadow.Replica.peers <- List.map fst regions;
    let key = "stock" in
    let rng = Rng.create 0xE5C50 in
    (let tx = Txn.begin_ reps.(0) in
     let bc () = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
     let upd op = Txn.update tx key (Obj.Op_bcounter op) in
     let id i = reps.(i).Replica.id in
     upd (Ipa_crdt.Bcounter.prepare_grant (bc ()) ~rep:(id 0) 40);
     upd (Ipa_crdt.Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 1) 13);
     upd (Ipa_crdt.Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 2) 13);
     upd (Ipa_crdt.Bcounter.prepare_inc (bc ()) ~rep:(id 0) 9);
     upd (Ipa_crdt.Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 1) 3);
     upd (Ipa_crdt.Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 2) 3);
     match Txn.commit tx with
     | Some b ->
         Cluster.broadcast_now cluster b;
         Replica.receive shadow b
     | None -> assert false);
    let steps = if quick then 500 else 4_000 in
    let pending = ref [] in
    let escapes = ref 0 and probes = ref 0 and widths = ref [] in
    let committed = ref 0 and aborted = ref 0 in
    for step = 1 to steps do
      let due, later = List.partition (fun (s, _, _) -> s <= step) !pending in
      pending := later;
      List.iter (fun (_, j, b) -> Replica.receive reps.(j) b) due;
      let i = Rng.int rng 3 in
      let rep = reps.(i) in
      let tx = Txn.begin_ rep in
      let c = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
      (match
         if Rng.flip rng 0.5 then
           Ipa_crdt.Bcounter.prepare_inc c ~rep:rep.Replica.id 1
         else Ipa_crdt.Bcounter.prepare_dec c ~rep:rep.Replica.id 1
       with
      | op -> (
          Txn.update tx key (Obj.Op_bcounter op);
          match Txn.commit tx with
          | Some b ->
              Stdlib.incr committed;
              Replica.receive shadow b;
              for j = 0 to 2 do
                if j <> i then
                  pending := (step + 1 + Rng.int rng 40, j, b) :: !pending
              done
          | None -> Stdlib.incr aborted)
      | exception
          ( Ipa_crdt.Bcounter.Insufficient_rights _
          | Ipa_crdt.Bcounter.Insufficient_headroom _ ) ->
          Txn.abort tx;
          Stdlib.incr aborted);
      let t =
        match Replica.peek shadow key with
        | Some o -> Ipa_crdt.Bcounter.quick_value (Obj.as_bcounter o)
        | None -> 0
      in
      Array.iter
        (fun r ->
          let iv = Read.interval_at r key in
          Stdlib.incr probes;
          match iv.Read.hi with
          | Some h ->
              widths := float_of_int (h - iv.Read.lo) :: !widths;
              if not (iv.Read.lo <= t && t <= h) then Stdlib.incr escapes
          | None -> if iv.Read.lo > t then Stdlib.incr escapes)
        reps
    done;
    pr
      "interval: %d probes over %d committed / %d aborted escrow ops; \
       %d escapes; width mean %.1f p95 %.0f@."
      !probes !committed !aborted !escapes (mean !widths)
      (Metrics.percentile 95.0 !widths);
    if !escapes > 0 then
      failwith
        (Fmt.str "consistency: %d interval reads escaped [lo, hi]" !escapes);
    [
      bench_row ~experiment:"consistency"
        [
          ("phase", S "interval");
          ("probes", I !probes);
          ("escrow_committed", I !committed);
          ("escrow_aborted", I !aborted);
          ("escapes", I !escapes);
          ("width_mean", Fd (mean !widths, 2));
          ("width_p95", Fd (Metrics.percentile 95.0 !widths, 0));
        ];
    ]
  in
  (* read-oracle fuzz sweep: every schedule injects read/escrow events
     and the oracle judges interval containment, the staleness cover
     rule and strong-read exactness on each one *)
  let fuzz_runs = if quick then 25 else 200 in
  let open Ipa_check in
  let fuzz_rows =
    List.map
      (fun app ->
        let t0 = Unix.gettimeofday () in
        let r =
          Fuzz.campaign ~app ~repaired:true ~seed:1 ~runs:fuzz_runs ~reads:12
            ~stop_on_failure:false ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        pr "fuzz+reads %-12s %d/%d schedules passed (%.1fs)@." app
          (r.Fuzz.runs - r.Fuzz.failed_runs)
          r.Fuzz.runs wall;
        if r.Fuzz.failed_runs > 0 then
          failwith
            (Fmt.str "consistency: %s failed %d read-oracle schedules" app
               r.Fuzz.failed_runs);
        bench_row ~experiment:"consistency"
          [
            ("phase", S "fuzz");
            ("app", S app);
            ("reads_per_schedule", I 12);
            ("runs", I r.Fuzz.runs);
            ("failed", I r.Fuzz.failed_runs);
            ("wall_s", F wall);
          ])
      Harness.app_names
  in
  write_bench_json ~file:"BENCH_CONSISTENCY.json" ~experiment:"consistency"
    [
      ("quick", B quick);
      ("horizon_ms", Fd (horizon, 0));
      ("n_keys", I n_keys);
      ("theta", F theta);
      ("probe_every_ms", Fd (probe_every, 0));
      ("strong_over_bounded", Fd (speedup, 1));
    ]
    (rows @ interval_rows @ fuzz_rows);
  pr
    "@.(wrote BENCH_CONSISTENCY.json; strong reads %.1fx the latency of\
     @. bounded@@1000ms; 0 interval escapes; %d read-oracle schedules\
     @. per app, 0 failures.)@."
    speedup (fuzz_runs)

(* ------------------------------------------------------------------ *)
(* Escrow planner: demand-aware placement & adaptive rights migration  *)
(* ------------------------------------------------------------------ *)

(* The four systems of the escrow head-to-head.  All but Strong run in
   the Local configuration — what differs is the guard (none / escrow),
   where the rights start, and whether they chase demand:
   Causal   unguarded PN-counter (oversells);
   Strong   escrow at the primary, every update pays the WAN forward;
   Indigo   reactive escrow — all rights at the warehouse, exhaustion
            pays a blocking WAN fetch (Indigo's reservation migration);
   Planned  planner placement + proactive migration piggybacked on
            anti-entropy rounds. *)
type esys = E_causal | E_strong | E_reactive | E_planned

let esys_name = function
  | E_causal -> "Causal"
  | E_strong -> "Strong"
  | E_reactive -> "Indigo"
  | E_planned -> "Planned"

let escrow ?(quick = false) () =
  pr "== Escrow planner: demand-aware placement vs reactive transfers ==@.";
  let theta = 0.99 in
  let n_keys = if quick then 6 else 12 in
  let pool0 = 32 in
  let restock_every = 8 and restock_n = 8 in
  let rate = if quick then 150.0 else 300.0 in
  let horizon = if quick then 8_000.0 else 30_000.0 in
  (* the long run needs the longer warmup: the 32-right seed pools are
     deliberately scarce against 30 s of demand, so the first seconds
     are a global stock-out on mid-rank keys (nothing any placement can
     ship) until restock inflow accumulates — escrow attempts, like the
     driver's latency metrics, are counted only after the warmup *)
  let warmup = if quick then 1_000.0 else 5_000.0 in
  let region_names = Array.of_list (List.map snd regions) in
  let rep_ids = Array.of_list (List.map fst regions) in
  let warehouse = region_names.(0) in
  let keys = Array.init n_keys (fun i -> Fmt.str "stock%02d" i) in
  let z = Workload.zipf ~theta n_keys in
  (* one shared decision plan per event stream: every system replays the
     identical (key, region, restock?) sequence, so row differences are
     the system's, not the workload's.  A key's home market is the
     region at its rank mod 3 — for Indigo/Planned the interesting keys
     are the two thirds whose demand is far from the warehouse. *)
  let make_plan events =
    let rng = Rng.create 0xD3C1 in
    Array.of_list
      (List.mapi
         (fun i (e : Workload.event) ->
           let restock = i mod restock_every = restock_every - 1 in
           let region =
             if restock then warehouse
             else if Rng.flip rng 0.7 then region_names.(e.Workload.rank mod 3)
             else region_names.(Rng.int rng 3)
           in
           (e.Workload.rank, region, restock))
         events)
  in
  let run_system ~events ~(plan : (int * string * bool) array) (sysv : esys) =
    let engine = Engine.create () in
    let net = Net.create ~seed:11 () in
    let cluster = Cluster.create regions in
    let mode = if sysv = E_strong then Config.Strong else Config.Local in
    let cfg =
      Config.create ~sync_interval_ms:250.0 ~mode ~engine ~net ~cluster ()
    in
    let reps = Array.of_list cluster.Cluster.replicas in
    let em = Metrics.create () in
    (* steady-state accounting, same rule for every system: attempts
       inside the warmup window (seed-pool stock-outs) don't count *)
    let note_attempt a =
      if Engine.now engine >= warmup then Metrics.record_escrow_attempt em a
    in
    let truth = Array.make n_keys 0 in
    let oversold = ref 0 in
    let horizon_ms =
      List.fold_left
        (fun acc (e : Workload.event) -> Float.max acc e.Workload.at_ms)
        0.0 events
    in
    (* seed: value pool0 per key; Planned places rights by the demand
       forecast (the plan's 0.7 home-market bias), the escrow baselines
       hold everything at the warehouse *)
    Array.iteri
      (fun k key ->
        let tx = Txn.begin_ reps.(0) in
        (match sysv with
        | E_causal ->
            let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
            Txn.update tx key
              (Obj.Op_pncounter
                 (Ipa_crdt.Pncounter.prepare c ~rep:reps.(0).Replica.id pool0))
        | _ ->
            let shares =
              match sysv with
              | E_planned ->
                  let hot = rep_ids.(k mod 3) in
                  let others =
                    List.filter (fun r -> r <> hot) (Array.to_list rep_ids)
                  in
                  Ipa_core.Escrow_plan.apportion ~total:pool0
                    ((hot, 0.7) :: List.map (fun r -> (r, 0.15)) others)
              | _ -> [ (rep_ids.(0), pool0) ]
            in
            ignore (Txn.get tx key Obj.T_bcounter);
            List.iter
              (fun op -> Txn.update tx key (Obj.Op_bcounter op))
              (Escrow.seed ~shares ~value:pool0 ()));
        (match Txn.commit tx with
        | Some b -> Cluster.broadcast_now cluster b
        | None -> assert false);
        truth.(k) <- pool0)
      keys;
    (* planned: per-replica managers, ticked from the anti-entropy
       piggyback so migrations ride rounds already being paid for *)
    let mgrs = Hashtbl.create 8 in
    (* low hysteresis: transfers ride anti-entropy rounds already being
       paid for, so topping a replica up early costs nothing and the
       burst headroom prevents between-tick exhaustion *)
    let policy =
      { Escrow.default_policy with hysteresis = 0.02; min_batch = 1; slack = 4 }
    in
    Array.iter
      (fun r ->
        let mgr = Escrow.create ~policy ~rep:r.Replica.id () in
        (* the planner's per-key demand forecast primes the migration
           EWMA — the same prediction that sized the seed shares *)
        if sysv = E_planned then
          Array.iteri
            (fun k key ->
              let hot = rep_ids.(k mod 3) in
              Escrow.forecast mgr ~key
                (List.map
                   (fun rid -> (rid, if rid = hot then 0.8 else 0.1))
                   (Array.to_list rep_ids)))
            keys;
        Hashtbl.replace mgrs r.Replica.id mgr)
      reps;
    (match cfg.Config.sync with
    | Some s when sysv = E_planned ->
        s.Sync.on_round <-
          Some
            (fun ~now ->
              Array.iter
                (fun rep ->
                  let mgr = Hashtbl.find mgrs rep.Replica.id in
                  Array.iter
                    (fun key ->
                      match Replica.peek rep key with
                      | None -> ()
                      | Some o -> (
                          match
                            Escrow.tick mgr ~now ~key (Obj.as_bcounter o)
                          with
                          | [] -> ()
                          | ops ->
                              let mig =
                                {
                                  Config.op_name = "migrate";
                                  is_update = true;
                                  reservations = [];
                                  run =
                                    (fun r ->
                                      let tx = Txn.begin_ r in
                                      ignore (Txn.get tx key Obj.T_bcounter);
                                      List.iter
                                        (fun op ->
                                          Txn.update tx key (Obj.Op_bcounter op))
                                        ops;
                                      match Txn.commit tx with
                                      | Some b ->
                                          List.iter
                                            (function
                                              | Ipa_crdt.Bcounter.Transfer
                                                  { n; _ }
                                              | Ipa_crdt.Bcounter.Hmove { n; _ }
                                                ->
                                                  Metrics
                                                  .record_escrow_migration em
                                                    ~rights:n
                                              | _ -> ())
                                            ops;
                                          Config.outcome (Some b)
                                      | None -> Config.outcome None);
                                }
                              in
                              Config.execute cfg
                                ~client_region:rep.Replica.region mig
                                ~complete:(fun _ _ -> ())))
                    keys)
                reps)
    | _ -> ());
    (* conservation probes: audit every replica's causally consistent
       view of every counter twice per sync interval, all run long *)
    let audits = ref 0 in
    if sysv <> E_causal then begin
      let n_aud = int_of_float ((horizon_ms -. warmup) /. 500.0) in
      for i = 0 to n_aud - 1 do
        Engine.schedule engine
          ~delay:(warmup +. (float_of_int i *. 500.0))
          (fun () ->
            Array.iter
              (fun rep ->
                Array.iter
                  (fun key ->
                    match Replica.peek rep key with
                    | None -> ()
                    | Some o -> (
                        Stdlib.incr audits;
                        match Ipa_crdt.Bcounter.audit (Obj.as_bcounter o) with
                        | Some msg ->
                            failwith
                              (Fmt.str
                                 "escrow %s: conservation broke at %s/%s: %s"
                                 (esys_name sysv) rep.Replica.id key msg)
                        | None -> ()))
                  keys)
              reps)
      done
    end;
    (* the guarded decrement: covered locally (`Hit) or pay a blocking
       WAN fetch of half the richest peer's rights (`Miss) and retry *)
    let dec_op k : Config.op_exec =
      {
        Config.op_name = "buy";
        is_update = true;
        reservations = [];
        run =
          (fun rep ->
            let key = keys.(k) in
            if sysv = E_causal then begin
              let tx = Txn.begin_ rep in
              let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
              Txn.update tx key
                (Obj.Op_pncounter
                   (Ipa_crdt.Pncounter.prepare c ~rep:rep.Replica.id (-1)));
              match Txn.commit tx with
              | Some b ->
                  truth.(k) <- truth.(k) - 1;
                  if truth.(k) < 0 then begin
                    Stdlib.incr oversold;
                    Config.outcome ~violations:1 (Some b)
                  end
                  else Config.outcome (Some b)
              | None -> Config.outcome None
            end
            else begin
              if sysv = E_planned then
                Escrow.note_dec (Hashtbl.find mgrs rep.Replica.id) ~key 1;
              let tx = Txn.begin_ rep in
              let c = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
              match Ipa_crdt.Bcounter.prepare_dec c ~rep:rep.Replica.id 1 with
              | op -> (
                  Txn.update tx key (Obj.Op_bcounter op);
                  match Txn.commit tx with
                  | Some b ->
                      note_attempt `Hit;
                      truth.(k) <- truth.(k) - 1;
                      Config.outcome (Some b)
                  | None -> Config.outcome None)
              | exception Ipa_crdt.Bcounter.Insufficient_rights _ -> (
                  Txn.abort tx;
                  if sysv = E_planned && Sys.getenv_opt "ESCROW_DBG" <> None
                  then
                    Fmt.epr "DBG miss t=%.0f key=%s rep=%s hist=%a@."
                      (Engine.now engine) key rep.Replica.id
                      Fmt.(
                        list ~sep:comma (fun ppf (r, n) ->
                            Fmt.pf ppf "%s=%d" r n))
                      (Ipa_crdt.Bcounter.rights_histogram c);
                  let richest = ref None in
                  Array.iter
                    (fun peer ->
                      if peer.Replica.id <> rep.Replica.id then
                        match Replica.peek peer key with
                        | Some o ->
                            let have =
                              Ipa_crdt.Bcounter.local_rights
                                (Obj.as_bcounter o) peer.Replica.id
                            in
                            if
                              have > 0
                              && match !richest with
                                 | Some (_, best) -> have > best
                                 | None -> true
                            then richest := Some (peer, have)
                        | None -> ())
                    reps;
                  match !richest with
                  | None ->
                      (* globally exhausted: the fetch came back empty *)
                      note_attempt (`Miss 0);
                      Config.outcome ~extra_rtts:1 None
                  | Some (peer, have) -> (
                      let n = max 1 (have / 2) in
                      let ptx = Txn.begin_ peer in
                      let pc =
                        Obj.as_bcounter (Txn.get ptx key Obj.T_bcounter)
                      in
                      match
                        Ipa_crdt.Bcounter.prepare_transfer pc
                          ~from_:peer.Replica.id ~to_:rep.Replica.id n
                      with
                      | exception Ipa_crdt.Bcounter.Insufficient_rights _ ->
                          Txn.abort ptx;
                          note_attempt (`Miss 0);
                          Config.outcome ~extra_rtts:1 None
                      | top -> (
                          Txn.update ptx key (Obj.Op_bcounter top);
                          match Txn.commit ptx with
                          | None -> Config.outcome ~extra_rtts:1 None
                          | Some pb -> (
                              Cluster.broadcast_now cluster pb;
                              note_attempt (`Miss n);
                              let tx2 = Txn.begin_ rep in
                              let c2 =
                                Obj.as_bcounter (Txn.get tx2 key Obj.T_bcounter)
                              in
                              match
                                Ipa_crdt.Bcounter.prepare_dec c2
                                  ~rep:rep.Replica.id 1
                              with
                              | exception
                                  Ipa_crdt.Bcounter.Insufficient_rights _ ->
                                  Txn.abort tx2;
                                  Config.outcome ~extra_rtts:1 None
                              | dop -> (
                                  Txn.update tx2 key (Obj.Op_bcounter dop);
                                  match Txn.commit tx2 with
                                  | Some b ->
                                      truth.(k) <- truth.(k) - 1;
                                      Config.outcome ~extra_rtts:1 (Some b)
                                  | None -> Config.outcome ~extra_rtts:1 None))))
                  )
            end);
      }
    in
    let restock_op k : Config.op_exec =
      {
        Config.op_name = "restock";
        is_update = true;
        reservations = [];
        run =
          (fun rep ->
            let key = keys.(k) in
            let tx = Txn.begin_ rep in
            (match sysv with
            | E_causal ->
                let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
                Txn.update tx key
                  (Obj.Op_pncounter
                     (Ipa_crdt.Pncounter.prepare c ~rep:rep.Replica.id
                        restock_n))
            | _ ->
                let c = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
                Txn.update tx key
                  (Obj.Op_bcounter
                     (Ipa_crdt.Bcounter.prepare_inc c ~rep:rep.Replica.id
                        restock_n)));
            match Txn.commit tx with
            | Some b ->
                truth.(k) <- truth.(k) + restock_n;
                Config.outcome (Some b)
            | None -> Config.outcome None);
      }
    in
    let cursor = ref 0 in
    let op_of (_e : Workload.event) =
      let k, rg, restock = plan.(!cursor) in
      Stdlib.incr cursor;
      (rg, if restock then restock_op k else dec_op k)
    in
    let m = Driver.run_stream ~warmup_ms:warmup cfg ~events ~op_of in
    (* convergence + final conservation audit at every replica *)
    Array.iteri
      (fun k key ->
        Array.iter
          (fun rep ->
            let v =
              match Replica.peek rep key with
              | None -> 0
              | Some o ->
                  if sysv = E_causal then
                    Ipa_crdt.Pncounter.value (Obj.as_pncounter o)
                  else begin
                    let c = Obj.as_bcounter o in
                    (match Ipa_crdt.Bcounter.audit c with
                    | Some msg ->
                        failwith
                          (Fmt.str "escrow %s: final audit %s/%s: %s"
                             (esys_name sysv) rep.Replica.id key msg)
                    | None -> ());
                    Ipa_crdt.Bcounter.quick_value c
                  end
            in
            if v <> truth.(k) then
              failwith
                (Fmt.str "escrow %s: %s diverged at %s: sees %d, truth %d"
                   (esys_name sysv) key rep.Replica.id v truth.(k)))
          reps)
      keys;
    (* fold the op-path escrow accounting (a separate record: run_stream
       builds its own Metrics.t) into the run's metrics *)
    let e = m.Metrics.escrow and es = em.Metrics.escrow in
    e.Metrics.blocking_misses <- es.Metrics.blocking_misses;
    e.Metrics.stockouts <- es.Metrics.stockouts;
    e.Metrics.piggyback_hits <- es.Metrics.piggyback_hits;
    e.Metrics.rights_transfers <- es.Metrics.rights_transfers;
    e.Metrics.rights_shipped <- es.Metrics.rights_shipped;
    e.Metrics.migrations <- es.Metrics.migrations;
    e.Metrics.migrated_rights <- es.Metrics.migrated_rights;
    if sysv <> E_causal then
      e.Metrics.rights_hist <-
        List.init (min 3 n_keys) (fun k ->
            ( keys.(k),
              match Replica.peek reps.(0) keys.(k) with
              | Some o ->
                  Ipa_crdt.Bcounter.rights_histogram (Obj.as_bcounter o)
              | None -> [] ));
    (m, !audits, !oversold)
  in
  (* --- headline: open-loop Zipfian head-to-head ------------------- *)
  let events =
    Workload.open_loop
      ~rng:(Rng.create 0x0E5C)
      ~rate_per_s:rate ~horizon_ms:horizon ~clients:6 z
  in
  let plan = make_plan events in
  pr "%-8s %8s %9s %9s %9s %7s %7s %7s %9s %6s@." "system" "ops" "tput[/s]"
    "p95[ms]" "p99[ms]" "miss" "hit" "migr" "shipped" "viol";
  let stats = Hashtbl.create 8 in
  let open_rows =
    List.map
      (fun sysv ->
        let m, audits, oversold = run_system ~events ~plan sysv in
        let lats = Metrics.all_samples m () in
        let p95 = Metrics.percentile 95.0 lats
        and p99 = Metrics.percentile 99.0 lats in
        let e = m.Metrics.escrow in
        Hashtbl.replace stats (esys_name sysv)
          (e.Metrics.blocking_misses - e.Metrics.stockouts, p99);
        pr "%-8s %8d %9.1f %9.2f %9.2f %7d %7d %7d %9d %6d@."
          (esys_name sysv) (Metrics.count m ()) (Metrics.throughput m) p95 p99
          e.Metrics.blocking_misses e.Metrics.piggyback_hits
          e.Metrics.migrations e.Metrics.rights_shipped m.Metrics.violations;
        if sysv <> E_causal then pr "  %a@." Metrics.pp_escrow m;
        bench_row ~experiment:"escrow"
          [
            ("phase", S "open");
            ("system", S (esys_name sysv));
            ("ops", I (Metrics.count m ()));
            ("tput_per_s", Fd (Metrics.throughput m, 1));
            ("mean_ms", Fd (Metrics.mean_latency m (), 3));
            ("p95_ms", Fd (p95, 3));
            ("p99_ms", Fd (p99, 3));
            ("blocking_misses", I e.Metrics.blocking_misses);
            ("stockouts", I e.Metrics.stockouts);
            ("placement_misses",
             I (e.Metrics.blocking_misses - e.Metrics.stockouts));
            ("piggyback_hits", I e.Metrics.piggyback_hits);
            ("miss_rate", Fd (Metrics.escrow_miss_rate m, 4));
            ("migrations", I e.Metrics.migrations);
            ("migrated_rights", I e.Metrics.migrated_rights);
            ("rights_shipped", I e.Metrics.rights_shipped);
            ("violations", I m.Metrics.violations);
            ("oversold", I oversold);
            ("audits", I audits);
          ])
      [ E_causal; E_strong; E_reactive; E_planned ]
  in
  let reactive_misses, _ = Hashtbl.find stats "Indigo" in
  let planned_misses, planned_p99 = Hashtbl.find stats "Planned" in
  let _, strong_p99 = Hashtbl.find stats "Strong" in
  let miss_ratio =
    float_of_int reactive_misses /. float_of_int (max 1 planned_misses)
  in
  pr "reactive/planned placement-miss ratio: %.1fx  planned p99 %.2fms vs \
      strong %.2fms@."
    miss_ratio planned_p99 strong_p99;
  if reactive_misses < 3 * max 1 planned_misses then
    failwith
      (Fmt.str
         "escrow: planned placement only %.1fx fewer placement misses than \
          reactive (%d vs %d; must be >= 3x)"
         miss_ratio reactive_misses planned_misses);
  if planned_p99 >= strong_p99 then
    failwith
      (Fmt.str "escrow: planned p99 %.2fms not below Strong %.2fms"
         planned_p99 strong_p99);
  (* --- closed loop: same comparison under client feedback --------- *)
  let closed_rows =
    let cl_events =
      Workload.closed_loop
        ~rng:(Rng.create 0x10AD)
        ~clients:9 ~think_ms:40.0 ~horizon_ms:horizon z
    in
    let cl_plan = make_plan cl_events in
    List.map
      (fun sysv ->
        let m, audits, _ = run_system ~events:cl_events ~plan:cl_plan sysv in
        let e = m.Metrics.escrow in
        pr "closed  %-8s miss %d hit %d migrations %d p99 %.2fms@."
          (esys_name sysv) e.Metrics.blocking_misses e.Metrics.piggyback_hits
          e.Metrics.migrations
          (Metrics.percentile 99.0 (Metrics.all_samples m ()));
        Hashtbl.replace stats ("closed:" ^ esys_name sysv)
          (e.Metrics.blocking_misses - e.Metrics.stockouts, 0.0);
        bench_row ~experiment:"escrow"
          [
            ("phase", S "closed");
            ("system", S (esys_name sysv));
            ("ops", I (Metrics.count m ()));
            ("tput_per_s", Fd (Metrics.throughput m, 1));
            ("p99_ms",
             Fd (Metrics.percentile 99.0 (Metrics.all_samples m ()), 3));
            ("blocking_misses", I e.Metrics.blocking_misses);
            ("stockouts", I e.Metrics.stockouts);
            ("placement_misses",
             I (e.Metrics.blocking_misses - e.Metrics.stockouts));
            ("piggyback_hits", I e.Metrics.piggyback_hits);
            ("migrations", I e.Metrics.migrations);
            ("audits", I audits);
          ])
      [ E_reactive; E_planned ]
  in
  let cl_reactive, _ = Hashtbl.find stats "closed:Indigo" in
  let cl_planned, _ = Hashtbl.find stats "closed:Planned" in
  if cl_planned > cl_reactive then
    failwith
      (Fmt.str
         "escrow: closed-loop planned placement misses %d exceed reactive %d"
         cl_planned cl_reactive)
  ;
  (* --- wildcard / aggregate cap: the headroom dual ---------------- *)
  (* one capped counter guards the aggregate (a tournament's enrollment
     cap over every player — an Escrow_plan wildcard resource); demand
     is increments, and what migrates is headroom via Hmove *)
  let run_headroom planned =
    let engine = Engine.create () in
    let net = Net.create ~seed:23 () in
    let cluster = Cluster.create regions in
    let cfg =
      Config.create ~sync_interval_ms:250.0 ~mode:Config.Local ~engine ~net
        ~cluster ()
    in
    let reps = Array.of_list cluster.Cluster.replicas in
    let em = Metrics.create () in
    let key = "enrolled*" in
    let hrate = if quick then 60.0 else 120.0 in
    let cap = int_of_float (hrate *. horizon /. 1000.0) + 200 in
    let hot = rep_ids.(1) (* dc-west: far from the seeding home *) in
    (* the planned seed follows a deliberately stale forecast (mild
       skew), so the run also exercises adaptive Hmove migration: the
       prewarmed estimator must ship the rest of the headroom toward
       the observed hot region *)
    let hshares =
      if planned then
        Ipa_core.Escrow_plan.apportion ~total:cap
          ((hot, 0.4)
          :: List.filter_map
               (fun r -> if r = hot then None else Some (r, 0.3))
               (Array.to_list rep_ids))
      else [ (rep_ids.(0), cap) ]
    in
    (let tx = Txn.begin_ reps.(0) in
     ignore (Txn.get tx key Obj.T_bcounter);
     List.iter
       (fun op -> Txn.update tx key (Obj.Op_bcounter op))
       (Escrow.seed ~shares:[ (rep_ids.(0), 0) ] ~value:0 ~cap ~hshares ());
     match Txn.commit tx with
     | Some b -> Cluster.broadcast_now cluster b
     | None -> assert false);
    let mgrs = Hashtbl.create 8 in
    let policy =
      { Escrow.default_policy with hysteresis = 0.02; min_batch = 1; slack = 4 }
    in
    Array.iter
      (fun r ->
        let mgr = Escrow.create ~policy ~rep:r.Replica.id () in
        if planned then
          Escrow.forecast mgr ~key ~headroom:true
            (List.map
               (fun rid -> (rid, if rid = hot then 0.8 else 0.1))
               (Array.to_list rep_ids));
        Hashtbl.replace mgrs r.Replica.id mgr)
      reps;
    (match cfg.Config.sync with
    | Some s when planned ->
        s.Sync.on_round <-
          Some
            (fun ~now ->
              Array.iter
                (fun rep ->
                  match Replica.peek rep key with
                  | None -> ()
                  | Some o -> (
                      match
                        Escrow.tick
                          (Hashtbl.find mgrs rep.Replica.id)
                          ~now ~key (Obj.as_bcounter o)
                      with
                      | [] -> ()
                      | ops ->
                          let mig =
                            {
                              Config.op_name = "migrate";
                              is_update = true;
                              reservations = [];
                              run =
                                (fun r ->
                                  let tx = Txn.begin_ r in
                                  ignore (Txn.get tx key Obj.T_bcounter);
                                  List.iter
                                    (fun op ->
                                      Txn.update tx key (Obj.Op_bcounter op))
                                    ops;
                                  match Txn.commit tx with
                                  | Some b ->
                                      List.iter
                                        (function
                                          | Ipa_crdt.Bcounter.Transfer { n; _ }
                                          | Ipa_crdt.Bcounter.Hmove { n; _ } ->
                                              Metrics.record_escrow_migration
                                                em ~rights:n
                                          | _ -> ())
                                        ops;
                                      Config.outcome (Some b)
                                  | None -> Config.outcome None);
                            }
                          in
                          Config.execute cfg ~client_region:rep.Replica.region
                            mig
                            ~complete:(fun _ _ -> ())))
                reps)
    | _ -> ());
    let truth = ref 0 in
    let enroll : Config.op_exec =
      {
        Config.op_name = "enroll";
        is_update = true;
        reservations = [];
        run =
          (fun rep ->
            if planned then
              Escrow.note_inc (Hashtbl.find mgrs rep.Replica.id) ~key 1;
            let tx = Txn.begin_ rep in
            let c = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
            match Ipa_crdt.Bcounter.prepare_inc c ~rep:rep.Replica.id 1 with
            | op -> (
                Txn.update tx key (Obj.Op_bcounter op);
                match Txn.commit tx with
                | Some b ->
                    Metrics.record_escrow_attempt em `Hit;
                    Stdlib.incr truth;
                    Config.outcome (Some b)
                | None -> Config.outcome None)
            | exception Ipa_crdt.Bcounter.Insufficient_headroom _ -> (
                Txn.abort tx;
                let richest = ref None in
                Array.iter
                  (fun peer ->
                    if peer.Replica.id <> rep.Replica.id then
                      match Replica.peek peer key with
                      | Some o ->
                          let have =
                            Ipa_crdt.Bcounter.local_headroom
                              (Obj.as_bcounter o) peer.Replica.id
                          in
                          if
                            have > 0
                            && match !richest with
                               | Some (_, best) -> have > best
                               | None -> true
                          then richest := Some (peer, have)
                      | None -> ())
                  reps;
                match !richest with
                | None ->
                    Metrics.record_escrow_attempt em (`Miss 0);
                    Config.outcome ~extra_rtts:1 None
                | Some (peer, have) -> (
                    let n = max 1 (have / 2) in
                    let ptx = Txn.begin_ peer in
                    let pc = Obj.as_bcounter (Txn.get ptx key Obj.T_bcounter) in
                    match
                      Ipa_crdt.Bcounter.prepare_hmove pc ~from_:peer.Replica.id
                        ~to_:rep.Replica.id n
                    with
                    | exception Ipa_crdt.Bcounter.Insufficient_headroom _ ->
                        Txn.abort ptx;
                        Metrics.record_escrow_attempt em (`Miss 0);
                        Config.outcome ~extra_rtts:1 None
                    | top -> (
                        Txn.update ptx key (Obj.Op_bcounter top);
                        match Txn.commit ptx with
                        | None -> Config.outcome ~extra_rtts:1 None
                        | Some pb -> (
                            Cluster.broadcast_now cluster pb;
                            Metrics.record_escrow_attempt em (`Miss n);
                            let tx2 = Txn.begin_ rep in
                            let c2 =
                              Obj.as_bcounter (Txn.get tx2 key Obj.T_bcounter)
                            in
                            match
                              Ipa_crdt.Bcounter.prepare_inc c2
                                ~rep:rep.Replica.id 1
                            with
                            | exception
                                Ipa_crdt.Bcounter.Insufficient_headroom _ ->
                                Txn.abort tx2;
                                Config.outcome ~extra_rtts:1 None
                            | iop -> (
                                Txn.update tx2 key (Obj.Op_bcounter iop);
                                match Txn.commit tx2 with
                                | Some b ->
                                    Stdlib.incr truth;
                                    Config.outcome ~extra_rtts:1 (Some b)
                                | None -> Config.outcome ~extra_rtts:1 None))))
                ));
      }
    in
    let hz = Workload.zipf 1 in
    let events =
      Workload.open_loop
        ~rng:(Rng.create 0xCA9)
        ~rate_per_s:hrate ~horizon_ms:horizon ~clients:4 hz
    in
    let rrng = Rng.create 0xCAB in
    let regions_plan =
      Array.of_list
        (List.map
           (fun (_ : Workload.event) ->
             if Rng.flip rrng 0.7 then region_names.(1)
             else region_names.(Rng.int rrng 3))
           events)
    in
    let cursor = ref 0 in
    let op_of (_e : Workload.event) =
      let rg = regions_plan.(!cursor) in
      Stdlib.incr cursor;
      (rg, enroll)
    in
    let m = Driver.run_stream ~warmup_ms:warmup cfg ~events ~op_of in
    Array.iter
      (fun rep ->
        match Replica.peek rep key with
        | None -> failwith "escrow: headroom counter missing"
        | Some o ->
            let c = Obj.as_bcounter o in
            (match Ipa_crdt.Bcounter.audit c with
            | Some msg ->
                failwith
                  (Fmt.str "escrow headroom: final audit %s: %s"
                     rep.Replica.id msg)
            | None -> ());
            if Ipa_crdt.Bcounter.quick_value c <> !truth then
              failwith
                (Fmt.str "escrow headroom: %s sees %d, truth %d"
                   rep.Replica.id
                   (Ipa_crdt.Bcounter.quick_value c)
                   !truth))
      reps;
    let es = em.Metrics.escrow in
    ( es.Metrics.blocking_misses,
      es.Metrics.piggyback_hits,
      es.Metrics.migrated_rights,
      Metrics.percentile 99.0 (Metrics.all_samples m ()) )
  in
  let headroom_rows =
    List.map
      (fun planned ->
        let misses, hits, hmigrated, p99 = run_headroom planned in
        let name = if planned then "Planned" else "Indigo" in
        pr "headroom %-8s miss %d hit %d headroom-migrated %d p99 %.2fms@."
          name misses hits hmigrated p99;
        Hashtbl.replace stats ("headroom:" ^ name) (misses, p99);
        bench_row ~experiment:"escrow"
          [
            ("phase", S "headroom");
            ("system", S name);
            ("blocking_misses", I misses);
            ("piggyback_hits", I hits);
            ("headroom_migrated", I hmigrated);
            ("p99_ms", Fd (p99, 3));
          ])
      [ false; true ]
  in
  let hr_reactive, _ = Hashtbl.find stats "headroom:Indigo" in
  let hr_planned, _ = Hashtbl.find stats "headroom:Planned" in
  if hr_planned >= max 1 hr_reactive then
    failwith
      (Fmt.str
         "escrow: headroom planned misses %d not below reactive %d"
         hr_planned hr_reactive);
  (* --- static planner: the spec-derived resource table ------------ *)
  let plan_rows =
    let open Ipa_core.Escrow_plan in
    List.concat_map
      (fun spec ->
        let name = spec.Ipa_spec.Types.app_name in
        List.map
          (fun r ->
            pr "plan %-12s %a@." name pp_resource r;
            bench_row ~experiment:"escrow"
              [
                ("phase", S "plan");
                ("app", S name);
                ("resource", S r.r_name);
                ( "source",
                  S
                    (match r.r_source with
                    | Res_numeric -> "numeric"
                    | Res_cardinality -> "cardinality") );
                ("wild", B r.r_wild);
                ("lo", match r.r_lo with Some n -> I n | None -> S "-");
                ("hi", match r.r_hi with Some n -> I n | None -> S "-");
                ("dec_ops", I (List.length r.r_dec_ops));
                ("inc_ops", I (List.length r.r_inc_ops));
              ])
          (resources spec))
      (Ipa_spec.Catalog.all ())
  in
  if plan_rows = [] then failwith "escrow: planner extracted no resources";
  (* --- fuzz: conservation oracle under demand-skewed schedules ---- *)
  let fuzz_runs = if quick then 25 else 200 in
  let open Ipa_check in
  let fuzz_rows =
    List.map
      (fun app ->
        let t0 = Unix.gettimeofday () in
        let r =
          Fuzz.campaign ~app ~repaired:true ~seed:3 ~runs:fuzz_runs
            ~escrow_skew:10 ~stop_on_failure:false ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        pr "fuzz+escrow %-12s %d/%d schedules conserve rights (%.1fs)@." app
          (r.Fuzz.runs - r.Fuzz.failed_runs)
          r.Fuzz.runs wall;
        if r.Fuzz.failed_runs > 0 then
          failwith
            (Fmt.str "escrow: %s failed %d demand-skewed schedules" app
               r.Fuzz.failed_runs);
        bench_row ~experiment:"escrow"
          [
            ("phase", S "fuzz");
            ("app", S app);
            ("escrow_skew", I 10);
            ("runs", I r.Fuzz.runs);
            ("failed", I r.Fuzz.failed_runs);
            ("wall_s", F wall);
          ])
      Harness.app_names
  in
  write_bench_json ~file:"BENCH_ESCROW.json" ~experiment:"escrow"
    [
      ("quick", B quick);
      ("theta", F theta);
      ("n_keys", I n_keys);
      ("pool0", I pool0);
      ("rate_per_s", Fd (rate, 0));
      ("horizon_ms", Fd (horizon, 0));
      ("reactive_misses", I reactive_misses);
      ("planned_misses", I planned_misses);
      ("miss_ratio", Fd (miss_ratio, 1));
      ("strong_p99_ms", Fd (strong_p99, 3));
      ("planned_p99_ms", Fd (planned_p99, 3));
    ]
    (open_rows @ closed_rows @ headroom_rows @ plan_rows @ fuzz_rows);
  pr
    "@.(wrote BENCH_ESCROW.json; planned placement cut blocking misses\
     @. %.1fx vs reactive at theta=%.2f; planned p99 %.2fms < strong\
     @. %.2fms; every conservation audit passed.)@."
    miss_ratio theta planned_p99 strong_p99
