(** The IPA command-line tool (paper §4.1).

    Runs the static analysis on an application specification and reports
    conflicting operation pairs, proposed modifications, synthesized
    compensations, and flagged (coordination-requiring) pairs.

    {v
    ipa_tool analyze <spec.ipa>        run the full IPA loop
    ipa_tool diagnose <spec.ipa>       only list conflicting pairs
    ipa_tool wp <spec.ipa> [op]        print weakest preconditions
    ipa_tool classify <spec.ipa>       classify the invariants (Table 1)
    ipa_tool compose <a.ipa> <b.ipa>…  merge specs and list conflicts
    ipa_tool table1                    print the invariant-class matrix
    v}

    Spec arguments also accept the built-in catalog names
    (tournament|twitter|ticket|tpcw|tpcc).

    Options: [--search-rules] lets the repair search propose convergence
    rules beyond the specification's; [--policy fewest|prefer:<op>]
    selects among repair solutions. *)

open Cmdliner
open Ipa_spec
open Ipa_core

let load_catalog = function
  | "tournament" -> Some (Catalog.tournament ())
  | "twitter" -> Some (Catalog.twitter ())
  | "ticket" -> Some (Catalog.ticket ())
  | "tpcw" -> Some (Catalog.tpcw ())
  | "tpcc" -> Some (Catalog.tpcc ())
  | _ -> None

let load_spec path =
  match load_catalog path with
  | Some s -> s
  | None -> Spec_parser.parse_file path

let policy_of_string s =
  if s = "fewest" then Repair.Fewest_effects
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "prefer" ->
        Repair.Prefer_op (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Repair.Fewest_effects

let analyze_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let search_rules =
    Arg.(
      value & flag
      & info [ "search-rules" ]
          ~doc:"Allow the repair search to propose convergence rules.")
  in
  let policy =
    Arg.(
      value
      & opt string "fewest"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Resolution policy: fewest | prefer:<operation>.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print solver and cache statistics (SAT calls, conflicts, \
             cache hit rates, pruning rates, per-pair wall time).")
  in
  let run spec_path search_rules policy stats =
    let spec = load_spec spec_path in
    let report =
      Ipa.run ~policy:(policy_of_string policy) ~search_rules spec
    in
    Fmt.pr "%a@." Report.pp_report report;
    if stats then Fmt.pr "@.%a@." Report.pp_stats report
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the full IPA analysis loop.")
    Term.(const run $ spec_arg $ search_rules $ policy $ stats)

let diagnose_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let run spec_path =
    let spec = load_spec spec_path in
    let conflicts = Ipa.diagnose spec in
    if conflicts = [] then Fmt.pr "no conflicting pairs@."
    else
      List.iter
        (fun (o1, o2, w) ->
          Fmt.pr "%a@.@." (Report.pp_witness ~op1:o1 ~op2:o2) w)
        conflicts;
    Fmt.pr "%d conflicting pair(s)@." (List.length conflicts)
  in
  Cmd.v
    (Cmd.info "diagnose" ~doc:"List conflicting operation pairs.")
    Term.(const run $ spec_arg)

let table1_cmd =
  let run () = Fmt.pr "%a@." Report.pp_table1 (Catalog.all ()) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the Table 1 invariant-class matrix.")
    Term.(const run $ const ())

let wp_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let op_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"OP" ~doc:"Operation to explain (default: all).")
  in
  let run spec_path op_name =
    let spec = load_spec spec_path in
    let ops =
      match op_name with
      | Some n -> (
          match Ipa_spec.Types.find_op spec n with
          | Some o -> [ o ]
          | None -> Fmt.failwith "unknown operation %s" n)
      | None -> spec.Ipa_spec.Types.operations
    in
    let noop = Ipa_spec.Types.operation "__noop" [] [] in
    let sg = Ipa_spec.Types.signature spec in
    List.iter
      (fun (o : Ipa_spec.Types.operation) ->
        Fmt.pr "@[<v 2>%s(%a):@,"
          o.oname
          Fmt.(list ~sep:(any ", ") Ipa_logic.Pp.pp_tvar)
          o.oparams;
        let invs = Detect.relevant_invariants spec o noop in
        if invs = [] then Fmt.pr "no invariant constrains this operation@,"
        else
          List.iter
            (fun (u : Pairctx.unification) ->
              Fmt.pr "case %s:@," (Pairctx.describe u);
              List.iter
                (fun (i : Ipa_spec.Types.invariant) ->
                  let g =
                    Ipa_logic.Ground.ground ~sg
                      ~consts:spec.Ipa_spec.Types.consts ~dom:u.dom
                      i.iformula
                  in
                  let w =
                    Effects.ground_writes spec u.dom o u.binding1
                  in
                  let wp = Effects.apply_writes w g in
                  if wp <> g then
                    Fmt.pr "  wp[%s]: %a@," i.iname
                      Ipa_logic.Ground.pp_gformula wp)
                invs)
            (Pairctx.unifications spec o noop);
        Fmt.pr "@]@.")
      ops
  in
  Cmd.v
    (Cmd.info "wp"
       ~doc:
         "Print the weakest precondition of each operation with respect           to the invariants it can affect (per parameter-unification           case).")
    Term.(const run $ spec_arg $ op_arg)

let classify_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let run spec_path =
    let spec = load_spec spec_path in
    List.iter
      (fun (i : Ipa_spec.Types.invariant) ->
        let classes = Classify.classify_invariant i in
        Fmt.pr "%-20s %a@." i.iname
          Fmt.(
            list ~sep:(any ", ") (fun ppf c ->
                pf ppf "%s (I-Conf: %s, IPA: %s)" (Classify.class_name c)
                  (if Classify.i_confluent c then "Yes" else "No")
                  (Classify.support_name (Classify.ipa_support c))))
          classes)
      spec.Ipa_spec.Types.invariants;
    Fmt.pr "@.application classes: %a@."
      Fmt.(list ~sep:(any ", ") (fun ppf c -> string ppf (Classify.class_name c)))
      (Classify.app_classes spec)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify the invariants (Table 1 classes).")
    Term.(const run $ spec_arg)

let compose_cmd =
  let specs_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SPECS" ~doc:"Two or more .ipa files / catalog names.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ] ~doc:"Run the full IPA loop on the merged spec.")
  in
  let run spec_paths analyze_flag =
    let specs = List.map load_spec spec_paths in
    let merged = Ipa_spec.Compose.merge specs in
    Fmt.pr "merged %d specification(s): %d operations, %d invariants@.@."
      (List.length specs)
      (List.length merged.Ipa_spec.Types.operations)
      (List.length merged.Ipa_spec.Types.invariants);
    if analyze_flag then
      Fmt.pr "%a@." Report.pp_report (Ipa.run merged)
    else begin
      let conflicts = Ipa.diagnose merged in
      List.iter
        (fun (o1, o2, w) ->
          Fmt.pr "%s || %s  (violates: %s)@." o1 o2
            (String.concat ", " w.Detect.violated))
        conflicts;
      Fmt.pr "%d conflicting pair(s)@." (List.length conflicts)
    end
  in
  Cmd.v
    (Cmd.info "compose"
       ~doc:
         "Merge several application specifications sharing one database           (§5.1.4) and report cross-application conflicts.")
    Term.(const run $ specs_arg $ analyze)

let main =
  Cmd.group
    (Cmd.info "ipa_tool" ~version:"1.0.0"
       ~doc:"Invariant-preserving application analysis (IPA).")
    [ analyze_cmd; diagnose_cmd; wp_cmd; classify_cmd; compose_cmd; table1_cmd ]

let () = exit (Cmd.eval main)
