(** The IPA command-line tool (paper §4.1).

    Runs the static analysis on an application specification and reports
    conflicting operation pairs, proposed modifications, synthesized
    compensations, and flagged (coordination-requiring) pairs.

    {v
    ipa_tool analyze <spec.ipa>        run the full IPA loop
    ipa_tool diagnose <spec.ipa>       only list conflicting pairs
    ipa_tool wp <spec.ipa> [op]        print weakest preconditions
    ipa_tool classify <spec.ipa>       classify the invariants (Table 1)
    ipa_tool compose <a.ipa> <b.ipa>…  merge specs and list conflicts
    ipa_tool table1                    print the invariant-class matrix
    v}

    Spec arguments also accept the built-in catalog names
    (tournament|twitter|ticket|tpcw|tpcc).

    Options: [--search-rules] lets the repair search propose convergence
    rules beyond the specification's; [--policy fewest|prefer:<op>]
    selects among repair solutions; [--jobs N] (on [analyze] and
    [fuzz]) spreads the pair checks / fuzz runs over a domain pool —
    defaulting to the machine's recommended domain count (capped), with
    the [IPA_JOBS] environment variable overriding.  Results are
    bit-identical at every jobs level. *)

open Cmdliner
open Ipa_spec
open Ipa_core

let load_spec = Serve.load_spec

(* the shared [--jobs N] option: CLI flag beats IPA_JOBS beats the
   machine's recommended domain count; always clamped to the pool cap *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (default: \
           $(b,IPA_JOBS) if set, else the machine's recommended domain \
           count, capped).  Results are bit-identical at every level.")

let resolve_jobs = function
  | Some n -> max 1 (min Ipa_par.Pool.cap n)
  | None -> Ipa_par.Pool.default_jobs ()

let policy_of_string s =
  if s = "fewest" then Repair.Fewest_effects
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "prefer" ->
        Repair.Prefer_op (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Repair.Fewest_effects

let analyze_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let search_rules =
    Arg.(
      value & flag
      & info [ "search-rules" ]
          ~doc:"Allow the repair search to propose convergence rules.")
  in
  let policy =
    Arg.(
      value
      & opt string "fewest"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Resolution policy: fewest | prefer:<operation>.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print solver and cache statistics (SAT calls, conflicts, \
             cache hit rates, pruning rates, per-pair wall time).")
  in
  let run spec_path search_rules policy stats jobs =
    let spec = load_spec spec_path in
    let report =
      Ipa.run ~policy:(policy_of_string policy) ~search_rules
        ~jobs:(resolve_jobs jobs) spec
    in
    Fmt.pr "%a@." Report.pp_report report;
    if stats then Fmt.pr "@.%a@." Report.pp_stats report
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the full IPA analysis loop.")
    Term.(const run $ spec_arg $ search_rules $ policy $ stats $ jobs_arg)

let diagnose_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let run spec_path =
    let spec = load_spec spec_path in
    let conflicts = Ipa.diagnose spec in
    if conflicts = [] then Fmt.pr "no conflicting pairs@."
    else
      List.iter
        (fun (o1, o2, w) ->
          Fmt.pr "%a@.@." (Report.pp_witness ~op1:o1 ~op2:o2) w)
        conflicts;
    Fmt.pr "%d conflicting pair(s)@." (List.length conflicts)
  in
  Cmd.v
    (Cmd.info "diagnose" ~doc:"List conflicting operation pairs.")
    Term.(const run $ spec_arg)

let table1_cmd =
  let run () = Fmt.pr "%a@." Report.pp_table1 (Catalog.all ()) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the Table 1 invariant-class matrix.")
    Term.(const run $ const ())

let wp_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let op_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"OP" ~doc:"Operation to explain (default: all).")
  in
  let run spec_path op_name =
    let spec = load_spec spec_path in
    let ops =
      match op_name with
      | Some n -> (
          match Ipa_spec.Types.find_op spec n with
          | Some o -> [ o ]
          | None -> Fmt.failwith "unknown operation %s" n)
      | None -> spec.Ipa_spec.Types.operations
    in
    let noop = Ipa_spec.Types.operation "__noop" [] [] in
    let sg = Ipa_spec.Types.signature spec in
    List.iter
      (fun (o : Ipa_spec.Types.operation) ->
        Fmt.pr "@[<v 2>%s(%a):@,"
          o.oname
          Fmt.(list ~sep:(any ", ") Ipa_logic.Pp.pp_tvar)
          o.oparams;
        let invs = Detect.relevant_invariants spec o noop in
        if invs = [] then Fmt.pr "no invariant constrains this operation@,"
        else
          List.iter
            (fun (u : Pairctx.unification) ->
              Fmt.pr "case %s:@," (Pairctx.describe u);
              List.iter
                (fun (i : Ipa_spec.Types.invariant) ->
                  let g =
                    Ipa_logic.Ground.ground ~sg
                      ~consts:spec.Ipa_spec.Types.consts ~dom:u.dom
                      i.iformula
                  in
                  let w =
                    Effects.ground_writes spec u.dom o u.binding1
                  in
                  let wp = Effects.apply_writes w g in
                  if wp <> g then
                    Fmt.pr "  wp[%s]: %a@," i.iname
                      Ipa_logic.Ground.pp_gformula wp)
                invs)
            (Pairctx.unifications spec o noop);
        Fmt.pr "@]@.")
      ops
  in
  Cmd.v
    (Cmd.info "wp"
       ~doc:
         "Print the weakest precondition of each operation with respect           to the invariants it can affect (per parameter-unification           case).")
    Term.(const run $ spec_arg $ op_arg)

let classify_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Path to a .ipa file or a catalog name.")
  in
  let run spec_path =
    let spec = load_spec spec_path in
    List.iter
      (fun (i : Ipa_spec.Types.invariant) ->
        let classes = Classify.classify_invariant i in
        Fmt.pr "%-20s %a@." i.iname
          Fmt.(
            list ~sep:(any ", ") (fun ppf c ->
                pf ppf "%s (I-Conf: %s, IPA: %s)" (Classify.class_name c)
                  (if Classify.i_confluent c then "Yes" else "No")
                  (Classify.support_name (Classify.ipa_support c))))
          classes)
      spec.Ipa_spec.Types.invariants;
    Fmt.pr "@.application classes: %a@."
      Fmt.(list ~sep:(any ", ") (fun ppf c -> string ppf (Classify.class_name c)))
      (Classify.app_classes spec)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify the invariants (Table 1 classes).")
    Term.(const run $ spec_arg)

let compose_cmd =
  let specs_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SPECS" ~doc:"Two or more .ipa files / catalog names.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ] ~doc:"Run the full IPA loop on the merged spec.")
  in
  let run spec_paths analyze_flag =
    let specs = List.map load_spec spec_paths in
    let merged = Ipa_spec.Compose.merge specs in
    Fmt.pr "merged %d specification(s): %d operations, %d invariants@.@."
      (List.length specs)
      (List.length merged.Ipa_spec.Types.operations)
      (List.length merged.Ipa_spec.Types.invariants);
    if analyze_flag then
      Fmt.pr "%a@." Report.pp_report (Ipa.run merged)
    else begin
      let conflicts = Ipa.diagnose merged in
      List.iter
        (fun (o1, o2, w) ->
          Fmt.pr "%s || %s  (violates: %s)@." o1 o2
            (String.concat ", " w.Detect.violated))
        conflicts;
      Fmt.pr "%d conflicting pair(s)@." (List.length conflicts)
    end
  in
  Cmd.v
    (Cmd.info "compose"
       ~doc:
         "Merge several application specifications sharing one database           (§5.1.4) and report cross-application conflicts.")
    Term.(const run $ specs_arg $ analyze)

(* ------------------------------------------------------------------ *)
(* fuzz: deterministic simulation fuzzing                              *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let open Ipa_check in
  let app_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "app" ] ~docv:"APP"
          ~doc:
            "Catalog app to fuzz (tournament|twitter|ticket|tpcw) or $(b,all).")
  in
  let unrepaired =
    Arg.(
      value & flag
      & info [ "unrepaired" ]
          ~doc:
            "Fuzz the causal baseline instead of the IPA-repaired variant; \
             the campaign then $(i,expects) to find an invariant violation \
             (oracle-has-teeth mode) and fails if it cannot.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed; run $(i,i) uses seed N+i.")
  in
  let runs_arg =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"K" ~doc:"Schedules to execute per app.")
  in
  let ops_arg =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~docv:"N" ~doc:"Operation events per schedule.")
  in
  let crashes_arg =
    Arg.(
      value
      & opt ~vopt:2 int 0
      & info [ "crashes" ] ~docv:"N"
          ~doc:
            "Inject N crash-recover events per schedule (plain \
             $(b,--crashes) means 2; use $(b,--crashes=N) for another \
             count).  Every replica runs a checksummed write-ahead log; \
             crashed replicas lose their unflushed tail, recover from \
             snapshot + WAL replay, and the healed cluster must converge \
             bit-identically to the same schedule without crashes.")
  in
  let reads_arg =
    Arg.(
      value
      & opt ~vopt:12 int 0
      & info [ "reads" ] ~docv:"N"
          ~doc:
            "Inject N read/escrow events per schedule (plain $(b,--reads) \
             means 12; use $(b,--reads=N) for another count): weak, \
             bounded-staleness, strong and interval reads of the \
             fuzzer-owned escrow counter, plus escrow mutations.  The \
             oracle judges that every interval read contains the true \
             committed value, every bounded read is served by a replica \
             covering the resolved staleness bound, and every strong \
             read returns the true committed value.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke mode: 10 schedules of 25 operations per app \
             (overrides $(b,--runs) and $(b,--ops)).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a saved counterexample trace instead of fuzzing; exits \
             0 iff the recorded verdict (and digest) reproduce.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for shrunk counterexample trace files.")
  in
  let pp_counterexample app (c : Fuzz.counterexample) out =
    let file =
      Filename.concat out
        (Fmt.str "fuzz-%s-%s-seed%d.trace" app
           (if c.Fuzz.trace.Trace.repaired then "ipa" else "causal")
           c.Fuzz.trace.Trace.seed)
    in
    Trace.save file c.Fuzz.trace;
    Fmt.pr "  counterexample: %d events (%d ops), seed %d@."
      (Trace.n_events c.Fuzz.trace)
      (Trace.n_ops c.Fuzz.trace)
      c.Fuzz.trace.Trace.seed;
    List.iter (fun f -> Fmt.pr "    %a@." Oracle.pp_failure f) c.Fuzz.failures;
    Fmt.pr "  digest %s@." c.Fuzz.outcome.Oracle.digest;
    Fmt.pr "  replay file: %s@." file;
    file
  in
  let run app_sel unrepaired seed runs ops crashes reads quick replay out jobs =
    let runs = if quick then 10 else runs in
    let ops = if quick then 25 else ops in
    match replay with
    | Some file ->
        let tr = Trace.load file in
        let r = Fuzz.replay tr in
        Fmt.pr "replay %s: app=%s %s seed=%d events=%d@." file tr.Trace.app
          (if tr.Trace.repaired then "ipa" else "causal")
          tr.Trace.seed (Trace.n_events tr);
        List.iter
          (fun f -> Fmt.pr "  %a@." Oracle.pp_failure f)
          r.Fuzz.r_outcome.Oracle.failures;
        Fmt.pr "  digest %s@." r.Fuzz.r_outcome.Oracle.digest;
        if r.Fuzz.r_as_expected then begin
          Fmt.pr "reproduced: verdict and digest match the trace file@.";
          0
        end
        else begin
          Fmt.pr "NOT reproduced: verdict or digest differs@.";
          1
        end
    | None ->
        let apps =
          if app_sel = "all" then Harness.app_names
          else if List.mem app_sel Harness.app_names then [ app_sel ]
          else begin
            Fmt.epr "unknown app %s (expected %s|all)@." app_sel
              (String.concat "|" Harness.app_names);
            exit 2
          end
        in
        let repaired = not unrepaired in
        let ok = ref true in
        List.iter
          (fun app ->
            let r =
              Fuzz.campaign ~app ~repaired ~seed ~runs ~n_ops:ops ~crashes
                ~reads ~jobs:(resolve_jobs jobs) ()
            in
            if repaired then begin
              Fmt.pr "%-10s [ipa%s%s]    %d/%d schedules passed@." app
                (if crashes > 0 then "+crash" else "")
                (if reads > 0 then "+read" else "")
                (r.Fuzz.runs - r.Fuzz.failed_runs)
                r.Fuzz.runs;
              match r.Fuzz.first with
              | None -> ()
              | Some c ->
                  ok := false;
                  ignore (pp_counterexample app c out)
            end
            else begin
              match r.Fuzz.first with
              | Some c ->
                  Fmt.pr
                    "%-10s [causal] anomaly found after %d schedule(s)@." app
                    r.Fuzz.runs;
                  ignore (pp_counterexample app c out)
              | None ->
                  ok := false;
                  Fmt.pr
                    "%-10s [causal] no invariant violation in %d schedules \
                     (oracle has no teeth?)@."
                    app r.Fuzz.runs
            end)
          apps;
        if !ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Deterministic simulation fuzzing of the catalog apps on the \
          replicated runtime (random schedules + injected faults, \
          convergence and invariant oracles, trace shrinking).")
    Term.(
      const (fun a u s r o c rd q rp out j ->
          match run a u s r o c rd q rp out j with
          | 0 -> ()
          | code -> Stdlib.exit code)
      $ app_arg $ unrepaired $ seed_arg $ runs_arg $ ops_arg $ crashes_arg
      $ reads_arg $ quick_arg $ replay_arg $ out_arg $ jobs_arg)

let serve_cmd =
  let run jobs =
    Serve.serve ~jobs:(resolve_jobs jobs) stdin stdout
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Incremental analysis server on stdin/stdout.  Load a \
          specification, re-send it after each edit, and re-analyze: \
          the analysis context persists across requests, so a \
          re-analysis re-solves only the proof obligations the edit \
          invalidated and answers the rest from cache.  Send $(b,help) \
          for the protocol.")
    Term.(const run $ jobs_arg)

let main =
  Cmd.group
    (Cmd.info "ipa_tool" ~version:"1.0.0"
       ~doc:"Invariant-preserving application analysis (IPA).")
    [
      analyze_cmd;
      diagnose_cmd;
      wp_cmd;
      classify_cmd;
      compose_cmd;
      table1_cmd;
      fuzz_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main)
