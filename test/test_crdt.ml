(** Tests for [ipa_crdt]: vector clocks, the add-wins / rem-wins sets
    with touch and wildcard removes, counters and compensation CRDTs. *)

open Ipa_crdt

let dot rep cnt = { Vclock.rep; cnt }

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

let test_vclock_basics () =
  let vv = Vclock.empty in
  Alcotest.(check int) "empty reads 0" 0 (Vclock.get vv "a");
  let vv, d = Vclock.tick vv "a" in
  Alcotest.(check int) "tick" 1 (Vclock.get vv "a");
  Alcotest.(check bool) "dot" true (d = dot "a" 1);
  Alcotest.(check bool) "contains" true (Vclock.contains vv d);
  Alcotest.(check bool) "not contains future" false
    (Vclock.contains vv (dot "a" 2))

let test_vclock_order () =
  let a = Vclock.of_list [ ("r1", 2); ("r2", 1) ] in
  let b = Vclock.of_list [ ("r1", 2); ("r2", 3) ] in
  let c = Vclock.of_list [ ("r1", 3); ("r2", 0) ] in
  Alcotest.(check bool) "a < b" true (Vclock.lt a b);
  Alcotest.(check bool) "b !< a" false (Vclock.lt b a);
  Alcotest.(check bool) "b || c" true (Vclock.concurrent b c);
  Alcotest.(check bool) "merge upper bound" true
    (Vclock.leq b (Vclock.merge b c) && Vclock.leq c (Vclock.merge b c))

let test_vclock_compare () =
  let a = Vclock.of_list [ ("r1", 1) ] in
  let b = Vclock.of_list [ ("r1", 1) ] in
  Alcotest.(check bool) "equal" true (Vclock.compare_vv a b = Vclock.Equal);
  Alcotest.(check bool) "before" true
    (Vclock.compare_vv a (Vclock.of_list [ ("r1", 2) ]) = Vclock.Before)

(* qcheck generator for vector clocks over 3 replicas *)
let gen_vv =
  QCheck.Gen.(
    map3
      (fun a b c -> Vclock.of_list [ ("r1", a); ("r2", b); ("r3", c) ])
      (int_bound 4) (int_bound 4) (int_bound 4))

let prop_merge_commutative =
  QCheck.Test.make ~name:"vclock merge commutative" ~count:200
    QCheck.(make Gen.(pair gen_vv gen_vv))
    (fun (a, b) -> Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"vclock merge idempotent" ~count:100
    (QCheck.make gen_vv) (fun a -> Vclock.equal (Vclock.merge a a) a)

let prop_merge_associative =
  QCheck.Test.make ~name:"vclock merge associative" ~count:200
    QCheck.(make Gen.(triple gen_vv gen_vv gen_vv))
    (fun (a, b, c) ->
      Vclock.equal
        (Vclock.merge a (Vclock.merge b c))
        (Vclock.merge (Vclock.merge a b) c))

let prop_min_pointwise =
  QCheck.Test.make ~name:"vclock min_pointwise is the pointwise min"
    ~count:200
    QCheck.(make Gen.(pair gen_vv gen_vv))
    (fun (a, b) ->
      let m = Vclock.min_pointwise a b in
      Vclock.leq m a && Vclock.leq m b
      && List.for_all
           (fun r -> Vclock.get m r = min (Vclock.get a r) (Vclock.get b r))
           [ "r1"; "r2"; "r3" ])

let prop_to_list_roundtrip =
  QCheck.Test.make ~name:"vclock of_list/to_list round-trips" ~count:200
    (QCheck.make gen_vv) (fun a ->
      Vclock.equal (Vclock.of_list (Vclock.to_list a)) a)

let test_vclock_replica_namespace_isolated () =
  (* regression: clocks index by the replica-id namespace ({!Intern.Rep}),
     so flooding the key interner must not widen them.  When both shared
     one namespace, a replica id first seen after a million-key
     population received id 1M+ and every subsequent clock copy was a
     million entries wide. *)
  let rep_before = Intern.Rep.count () in
  for i = 0 to 9_999 do
    ignore (Intern.id (Printf.sprintf "vc-flood-%d" i))
  done;
  let vv = Vclock.set Vclock.empty "vc-late-rep" 3 in
  Alcotest.(check int) "only the replica id entered the Rep namespace"
    (rep_before + 1) (Intern.Rep.count ());
  Alcotest.(check (option int)) "keys never enter the replica namespace"
    None
    (Intern.Rep.find "vc-flood-0");
  Alcotest.(check (option int)) "replica ids never enter the key namespace"
    None
    (Intern.find "vc-late-rep");
  Alcotest.(check int) "clock entry reads back" 3 (Vclock.get vv "vc-late-rep")

(* ------------------------------------------------------------------ *)
(* Add-wins set                                                        *)
(* ------------------------------------------------------------------ *)

let test_awset_add_remove () =
  let s = Awset.apply Awset.empty (Awset.prepare_add Awset.empty ~dot:(dot "r1" 1) "x") in
  Alcotest.(check bool) "added" true (Awset.mem "x" s);
  let s = Awset.apply s (Awset.prepare_remove s "x") in
  Alcotest.(check bool) "removed" false (Awset.mem "x" s);
  Alcotest.(check int) "size 0" 0 (Awset.size s)

let test_awset_add_wins () =
  (* concurrent add and remove at two replicas: the add wins *)
  let base =
    Awset.apply Awset.empty
      (Awset.prepare_add Awset.empty ~dot:(dot "r1" 1) "x")
  in
  (* r1 removes x (observes dot r1#1); r2 concurrently re-adds x *)
  let rm = Awset.prepare_remove base "x" in
  let add2 = Awset.prepare_add base ~dot:(dot "r2" 1) "x" in
  (* both orders converge to x present *)
  let s_a = Awset.apply (Awset.apply base rm) add2 in
  let s_b = Awset.apply (Awset.apply base add2) rm in
  Alcotest.(check bool) "x present (rm then add)" true (Awset.mem "x" s_a);
  Alcotest.(check bool) "x present (add then rm)" true (Awset.mem "x" s_b);
  Alcotest.(check bool) "same elements" true
    (Awset.elements s_a = Awset.elements s_b)

let test_awset_payload () =
  let add =
    Awset.prepare_add ~payload:"alice@x" Awset.empty ~dot:(dot "r1" 1) "alice"
  in
  let s = Awset.apply Awset.empty add in
  Alcotest.(check (option string)) "payload" (Some "alice@x")
    (Awset.payload "alice" s)

let test_awset_touch_preserves_payload () =
  let s =
    Awset.apply Awset.empty
      (Awset.prepare_add ~payload:"data" Awset.empty ~dot:(dot "r1" 1) "e")
  in
  let s = Awset.apply s (Awset.prepare_remove s "e") in
  Alcotest.(check bool) "gone" false (Awset.mem "e" s);
  Alcotest.(check (option string)) "payload survives removal" (Some "data")
    (Awset.saved_payload "e" s);
  (* touch re-adds membership and the old payload becomes visible again *)
  let s = Awset.apply s (Awset.prepare_touch s ~dot:(dot "r2" 1) "e") in
  Alcotest.(check bool) "member again" true (Awset.mem "e" s);
  Alcotest.(check (option string)) "payload restored" (Some "data")
    (Awset.payload "e" s)

let test_awset_wildcard_remove () =
  let add d e s = Awset.apply s (Awset.prepare_add s ~dot:d e) in
  let s = Awset.empty |> add (dot "r1" 1) "a:t1" |> add (dot "r1" 2) "b:t1"
          |> add (dot "r1" 3) "c:t2" in
  let sel = Awset.Matching (fun e -> Filename.check_suffix e ":t1") in
  let rm = Awset.prepare_remove_where s sel in
  let s = Awset.apply s rm in
  Alcotest.(check (list string)) "only t2 entry left" [ "c:t2" ]
    (Awset.elements s)

let test_awset_wildcard_add_wins () =
  (* a concurrent add is NOT cancelled by the wildcard remove *)
  let s0 =
    Awset.apply Awset.empty
      (Awset.prepare_add Awset.empty ~dot:(dot "r1" 1) "a:t1")
  in
  let rm = Awset.prepare_remove_where s0 Awset.All in
  (* concurrently, r2 adds b:t1 (not observed by the remove) *)
  let add_b = Awset.prepare_add s0 ~dot:(dot "r2" 1) "b:t1" in
  let s = Awset.apply (Awset.apply s0 rm) add_b in
  Alcotest.(check (list string)) "concurrent add survives" [ "b:t1" ]
    (Awset.elements s)

(* ------------------------------------------------------------------ *)
(* Remove-wins set                                                     *)
(* ------------------------------------------------------------------ *)

let vv l = Vclock.of_list l

let test_rwset_add_remove () =
  let add = Rwset.prepare_add Rwset.empty ~dot:(dot "r1" 1) ~vv:(vv [ ("r1", 1) ]) "x" in
  let s = Rwset.apply Rwset.empty add in
  Alcotest.(check bool) "added" true (Rwset.mem "x" s);
  let s = Rwset.apply s (Rwset.prepare_remove s ~vv:(vv [ ("r1", 2) ]) "x") in
  Alcotest.(check bool) "removed" false (Rwset.mem "x" s)

let test_rwset_remove_wins () =
  (* concurrent add (r2) and remove (r1): remove wins *)
  let add0 = Rwset.prepare_add Rwset.empty ~dot:(dot "r1" 1) ~vv:(vv [ ("r1", 1) ]) "x" in
  let base = Rwset.apply Rwset.empty add0 in
  let rm = Rwset.prepare_remove base ~vv:(vv [ ("r1", 2) ]) "x" in
  let re_add = Rwset.prepare_add base ~dot:(dot "r2" 1) ~vv:(vv [ ("r1", 1); ("r2", 1) ]) "x" in
  let s_a = Rwset.apply (Rwset.apply base rm) re_add in
  let s_b = Rwset.apply (Rwset.apply base re_add) rm in
  Alcotest.(check bool) "absent (rm then add)" false (Rwset.mem "x" s_a);
  Alcotest.(check bool) "absent (add then rm)" false (Rwset.mem "x" s_b)

let test_rwset_causal_readd () =
  (* an add that has SEEN the remove wins (it is causally after) *)
  let base =
    Rwset.apply Rwset.empty
      (Rwset.prepare_add Rwset.empty ~dot:(dot "r1" 1) ~vv:(vv [ ("r1", 1) ]) "x")
  in
  let s = Rwset.apply base (Rwset.prepare_remove base ~vv:(vv [ ("r1", 2) ]) "x") in
  let s =
    Rwset.apply s
      (Rwset.prepare_add s ~dot:(dot "r1" 3) ~vv:(vv [ ("r1", 3) ]) "x")
  in
  Alcotest.(check bool) "causal re-add visible" true (Rwset.mem "x" s)

let test_rwset_wildcard_kills_concurrent_adds () =
  (* the Figure 2c semantics: enrolled( *, t) := false cancels enrolls the
     source never saw *)
  let base = Rwset.empty in
  let rm_all = Rwset.prepare_remove_where base ~vv:(vv [ ("r1", 1) ]) Rwset.All in
  let concurrent_add =
    Rwset.prepare_add base ~dot:(dot "r2" 1) ~vv:(vv [ ("r2", 1) ]) "p:t1"
  in
  let s = Rwset.apply (Rwset.apply base rm_all) concurrent_add in
  Alcotest.(check bool) "concurrent add cancelled" false (Rwset.mem "p:t1" s);
  (* but an add issued after seeing the barrier is visible *)
  let later =
    Rwset.prepare_add s ~dot:(dot "r2" 2) ~vv:(vv [ ("r1", 1); ("r2", 2) ]) "q:t1"
  in
  let s = Rwset.apply s later in
  Alcotest.(check bool) "later add visible" true (Rwset.mem "q:t1" s)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_pncounter () =
  let c = Pncounter.empty in
  let c = Pncounter.apply c (Pncounter.prepare c ~rep:"r1" 5) in
  let c = Pncounter.apply c (Pncounter.prepare c ~rep:"r2" (-2)) in
  Alcotest.(check int) "value" 3 (Pncounter.value c)

let prop_pncounter_order_independent =
  QCheck.Test.make ~name:"pncounter is order independent" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_bound 8)
            (pair (oneofl [ "r1"; "r2"; "r3" ]) (int_range (-5) 5))))
    (fun deltas ->
      let ops =
        List.map
          (fun (rep, d) -> Pncounter.prepare Pncounter.empty ~rep d)
          deltas
      in
      let v1 =
        Pncounter.value (List.fold_left Pncounter.apply Pncounter.empty ops)
      in
      let v2 =
        Pncounter.value
          (List.fold_left Pncounter.apply Pncounter.empty (List.rev ops))
      in
      v1 = v2 && v1 = List.fold_left (fun a (_, d) -> a + d) 0 deltas)

let prop_pncounter_quick_value =
  QCheck.Test.make ~name:"pncounter quick_value tracks value" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_bound 10)
            (pair (oneofl [ "r1"; "r2"; "r3" ]) (int_range (-5) 5))))
    (fun deltas ->
      let c = ref Pncounter.empty in
      List.for_all
        (fun (rep, d) ->
          c := Pncounter.apply !c (Pncounter.prepare !c ~rep d);
          Pncounter.quick_value !c = Pncounter.value !c)
        deltas)

let prop_bcounter_quick_value =
  (* random inc/dec/transfer scripts; steps the rights discipline rejects
     are simply skipped — the maintained total must track the recomputed
     value after every applied op *)
  QCheck.Test.make ~name:"bcounter quick_value tracks value" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_bound 12)
            (triple (int_bound 2)
               (pair (oneofl [ "r1"; "r2" ]) (oneofl [ "r1"; "r2" ]))
               (int_range 1 6))))
    (fun script ->
      let c = ref Bcounter.empty in
      List.for_all
        (fun (kind, (ra, rb), n) ->
          (match kind with
          | 0 -> c := Bcounter.apply !c (Bcounter.prepare_inc !c ~rep:ra n)
          | 1 -> (
              match Bcounter.prepare_dec !c ~rep:ra n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_rights _ -> ())
          | _ -> (
              match Bcounter.prepare_transfer !c ~from_:ra ~to_:rb n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_rights _ -> ()));
          Bcounter.quick_value !c = Bcounter.value !c)
        script)

let test_compcounter_quick_raw_value () =
  let c = Compcounter.create () in
  let c = Compcounter.apply c (Compcounter.prepare_delta c ~rep:"r1" 4) in
  let c = Compcounter.apply c (Compcounter.prepare_delta c ~rep:"r2" (-6)) in
  Alcotest.(check int) "quick_raw_value tracks raw_value"
    (Compcounter.raw_value c)
    (Compcounter.quick_raw_value c)

let test_bcounter_rights () =
  let c = Bcounter.empty in
  let c = Bcounter.apply c (Bcounter.prepare_inc c ~rep:"r1" 10) in
  Alcotest.(check int) "value 10" 10 (Bcounter.value c);
  Alcotest.(check int) "r1 rights" 10 (Bcounter.local_rights c "r1");
  Alcotest.(check int) "r2 rights" 0 (Bcounter.local_rights c "r2");
  (* r2 cannot decrement without rights *)
  (match Bcounter.prepare_dec c ~rep:"r2" 1 with
  | exception Bcounter.Insufficient_rights _ -> ()
  | _ -> Alcotest.fail "expected Insufficient_rights");
  (* transfer rights, then decrement *)
  let c = Bcounter.apply c (Bcounter.prepare_transfer c ~from_:"r1" ~to_:"r2" 4) in
  Alcotest.(check int) "r1 rights after transfer" 6 (Bcounter.local_rights c "r1");
  Alcotest.(check int) "r2 rights after transfer" 4 (Bcounter.local_rights c "r2");
  let c = Bcounter.apply c (Bcounter.prepare_dec c ~rep:"r2" 3) in
  Alcotest.(check int) "value after dec" 7 (Bcounter.value c);
  Alcotest.(check int) "r2 rights after dec" 1 (Bcounter.local_rights c "r2")

let test_bcounter_never_negative () =
  (* rights discipline keeps the global value >= 0 regardless of order *)
  let c = Bcounter.empty in
  let c = Bcounter.apply c (Bcounter.prepare_inc c ~rep:"r1" 3) in
  let d1 = Bcounter.prepare_dec c ~rep:"r1" 3 in
  let c = Bcounter.apply c d1 in
  (match Bcounter.prepare_dec c ~rep:"r1" 1 with
  | exception Bcounter.Insufficient_rights _ -> ()
  | _ -> Alcotest.fail "rights exhausted");
  Alcotest.(check int) "value stays 0" 0 (Bcounter.value c)

let test_bcounter_demand_advisory () =
  (* Demand/Hdemand ops accumulate the advisory ledgers and nothing
     else: value, rights, headroom and the audit are all untouched *)
  let c = Bcounter.empty in
  let c = Bcounter.apply c (Bcounter.prepare_inc c ~rep:"r1" 5) in
  let c = Bcounter.apply c (Bcounter.prepare_demand c ~rep:"r2" 3) in
  let c = Bcounter.apply c (Bcounter.prepare_demand c ~rep:"r2" 4) in
  let c = Bcounter.apply c (Bcounter.prepare_hdemand c ~rep:"r1" 2) in
  Alcotest.(check int) "demand accumulates" 7 (Bcounter.local_demand c "r2");
  Alcotest.(check int) "hdemand accumulates" 2 (Bcounter.local_hdemand c "r1");
  Alcotest.(check int) "value untouched" 5 (Bcounter.value c);
  Alcotest.(check int) "rights untouched" 5 (Bcounter.local_rights c "r1");
  Alcotest.(check int) "no rights granted by demand" 0
    (Bcounter.local_rights c "r2");
  Alcotest.(check bool) "still uncapped" false (Bcounter.capped c);
  Alcotest.(check (option string)) "audit clean" None (Bcounter.audit c);
  (* a replica still cannot decrement on demand alone *)
  match Bcounter.prepare_dec c ~rep:"r2" 1 with
  | exception Bcounter.Insufficient_rights _ -> ()
  | _ -> Alcotest.fail "demand must not confer rights"

let prop_bcounter_conservation =
  (* arbitrary guarded scripts over the full op set — inc, dec,
     transfer, grant, hmove, demand, hdemand; guard-rejected steps are
     skipped — must keep every conservation identity {!Bcounter.audit}
     checks: sum of rights = value, (capped) sum of headroom =
     granted - value, no ledger overdrawn *)
  QCheck.Test.make ~name:"bcounter audit holds under guarded interleavings"
    ~count:300
    QCheck.(
      make
        Gen.(
          pair (int_bound 20)
            (list_size (int_bound 20)
               (triple (int_bound 6)
                  (pair
                     (oneofl [ "r1"; "r2"; "r3" ])
                     (oneofl [ "r1"; "r2"; "r3" ]))
                  (int_range 1 5)))))
    (fun (cap_extra, script) ->
      let c = ref Bcounter.empty in
      (* seed: some rights at r1, a cap a bit above the seeded value —
         the grant covers the seeding increments plus the headroom *)
      c := Bcounter.apply !c (Bcounter.prepare_inc !c ~rep:"r1" 6);
      c := Bcounter.apply !c (Bcounter.prepare_grant !c ~rep:"r1" (7 + cap_extra));
      List.for_all
        (fun (kind, (ra, rb), n) ->
          (match kind with
          | 0 -> (
              match Bcounter.prepare_inc !c ~rep:ra n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_headroom _ -> ())
          | 1 -> (
              match Bcounter.prepare_dec !c ~rep:ra n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_rights _ -> ())
          | 2 -> (
              match Bcounter.prepare_transfer !c ~from_:ra ~to_:rb n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_rights _ -> ())
          | 3 -> (
              match Bcounter.prepare_hmove !c ~from_:ra ~to_:rb n with
              | op -> c := Bcounter.apply !c op
              | exception Bcounter.Insufficient_headroom _ -> ())
          | 4 -> c := Bcounter.apply !c (Bcounter.prepare_demand !c ~rep:ra n)
          | _ -> c := Bcounter.apply !c (Bcounter.prepare_hdemand !c ~rep:ra n));
          Bcounter.audit !c = None)
        script)

(* ------------------------------------------------------------------ *)
(* Registers                                                           *)
(* ------------------------------------------------------------------ *)

let test_lww () =
  let r = Lww.empty in
  let r = Lww.apply r (Lww.prepare r ~ts:1 ~rep:"r1" "a") in
  let r = Lww.apply r (Lww.prepare r ~ts:2 ~rep:"r2" "b") in
  Alcotest.(check (option string)) "last wins" (Some "b") (Lww.value r);
  (* an older write does not clobber *)
  let r = Lww.apply r (Lww.prepare r ~ts:1 ~rep:"r3" "c") in
  Alcotest.(check (option string)) "older ignored" (Some "b") (Lww.value r)

let test_lww_tiebreak () =
  let w1 = Lww.prepare Lww.empty ~ts:1 ~rep:"r1" "a" in
  let w2 = Lww.prepare Lww.empty ~ts:1 ~rep:"r2" "b" in
  let ra = Lww.apply (Lww.apply Lww.empty w1) w2 in
  let rb = Lww.apply (Lww.apply Lww.empty w2) w1 in
  Alcotest.(check (option string)) "deterministic tiebreak" (Lww.value ra)
    (Lww.value rb)

let test_mvreg_concurrent () =
  let w1 =
    Mvreg.prepare Mvreg.empty ~dot:(dot "r1" 1) ~vv:(vv [ ("r1", 1) ]) "a"
  in
  let w2 =
    Mvreg.prepare Mvreg.empty ~dot:(dot "r2" 1) ~vv:(vv [ ("r2", 1) ]) "b"
  in
  let r = Mvreg.apply (Mvreg.apply Mvreg.empty w1) w2 in
  Alcotest.(check (list string)) "both siblings" [ "a"; "b" ] (Mvreg.values r);
  (* a later write that saw both replaces them *)
  let w3 =
    Mvreg.prepare r ~dot:(dot "r1" 2) ~vv:(vv [ ("r1", 2); ("r2", 1) ]) "c"
  in
  let r = Mvreg.apply r w3 in
  Alcotest.(check (list string)) "dominating write" [ "c" ] (Mvreg.values r)

(* ------------------------------------------------------------------ *)
(* Compensation CRDTs                                                  *)
(* ------------------------------------------------------------------ *)

let test_compset_within_bound () =
  let c = Compset.create ~max_size:2 in
  let c = Compset.apply c (Compset.prepare_add c ~dot:(dot "r1" 1) "a") in
  let c = Compset.apply c (Compset.prepare_add c ~dot:(dot "r1" 2) "b") in
  let visible, comps = Compset.read c in
  Alcotest.(check (list string)) "all visible" [ "a"; "b" ] visible;
  Alcotest.(check int) "no compensation" 0 (List.length comps);
  Alcotest.(check bool) "not violated" false (Compset.violated c)

let test_compset_compensates () =
  let c = Compset.create ~max_size:2 in
  let add c e i = Compset.apply c (Compset.prepare_add c ~dot:(dot "r1" i) e) in
  let c = add (add (add c "a" 1) "b" 2) "c" 3 in
  Alcotest.(check bool) "violated" true (Compset.violated c);
  let visible, comps = Compset.read c in
  (* deterministic victim: the largest element *)
  Alcotest.(check (list string)) "largest removed from view" [ "a"; "b" ]
    visible;
  Alcotest.(check int) "one compensation op" 1 (List.length comps);
  (* applying the compensation repairs the state *)
  let c = List.fold_left Compset.apply c comps in
  Alcotest.(check bool) "repaired" false (Compset.violated c);
  Alcotest.(check (list string)) "converged view" [ "a"; "b" ]
    (Compset.raw_elements c)

let test_compset_deterministic_victims () =
  (* two replicas observing the same violation pick the same victims *)
  let build order =
    List.fold_left
      (fun c (e, i) -> Compset.apply c (Compset.prepare_add c ~dot:(dot "r1" i) e))
      (Compset.create ~max_size:1) order
  in
  let c1 = build [ ("x", 1); ("y", 2); ("z", 3) ] in
  let c2 = build [ ("z", 3); ("x", 1); ("y", 2) ] in
  let v1, _ = Compset.read c1 and v2, _ = Compset.read c2 in
  Alcotest.(check (list string)) "same view" v1 v2

let test_compcounter () =
  let c = Compcounter.create () in
  let c = Compcounter.apply c (Compcounter.prepare_delta c ~rep:"r1" 2) in
  (* two concurrent decrements oversell *)
  let d1 = Compcounter.prepare_delta c ~rep:"r1" (-2) in
  let d2 = Compcounter.prepare_delta c ~rep:"r2" (-1) in
  let c = Compcounter.apply (Compcounter.apply c d1) d2 in
  Alcotest.(check int) "raw oversold" (-1) (Compcounter.raw_value c);
  Alcotest.(check bool) "violated" true (Compcounter.violated c);
  let value, comps, violations = Compcounter.read c ~rep:"r1" in
  Alcotest.(check int) "clamped read" 0 value;
  Alcotest.(check int) "one violation unit" 1 violations;
  let c = List.fold_left Compcounter.apply c comps in
  Alcotest.(check int) "repaired" 0 (Compcounter.raw_value c);
  Alcotest.(check bool) "no longer violated" false (Compcounter.violated c)

let test_compcounter_no_violation_read () =
  let c = Compcounter.create () in
  let c = Compcounter.apply c (Compcounter.prepare_delta c ~rep:"r1" 5) in
  let value, comps, violations = Compcounter.read c ~rep:"r1" in
  Alcotest.(check int) "value" 5 value;
  Alcotest.(check int) "no comps" 0 (List.length comps);
  Alcotest.(check int) "no violations" 0 violations

let test_comp_ops_carry_bounds () =
  (* every prepared op must embed the source object's bound so a remote
     replica can create the object faithfully *)
  let s = Compset.create ~max_size:7 in
  Alcotest.(check int) "compset add carries bound" 7
    (Compset.op_bound (Compset.prepare_add s ~dot:(dot "r1" 1) "a"));
  Alcotest.(check int) "compset remove carries bound" 7
    (Compset.op_bound (Compset.prepare_remove s "a"));
  let c = Compcounter.create ~min_value:3 () in
  Alcotest.(check int) "compcounter delta carries bound" 3
    (Compcounter.op_bound (Compcounter.prepare_delta c ~rep:"r1" (-1)));
  let c = Compcounter.apply c (Compcounter.prepare_delta c ~rep:"r1" (-1)) in
  let _, comps, _ = Compcounter.read c ~rep:"r1" in
  Alcotest.(check (list int)) "correction carries bound" [ 3 ]
    (List.map Compcounter.op_bound comps)

(* ------------------------------------------------------------------ *)
(* Convergence properties: random op sets in random delivery orders    *)
(* ------------------------------------------------------------------ *)

(* generate prepared AWSet ops with unique dots and apply in two random
   orders: membership must agree (ops prepared against a common base) *)
let prop_awset_concurrent_convergence =
  QCheck.Test.make ~name:"awset: concurrent ops commute" ~count:300
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 6)
            (triple (oneofl [ "a"; "b"; "c" ]) bool (int_range 1 100))))
    (fun script ->
      (* base state with a and b present *)
      let base =
        List.fold_left
          (fun s (e, i) -> Awset.apply s (Awset.prepare_add s ~dot:(dot "base" i) e))
          Awset.empty
          [ ("a", 1); ("b", 2) ]
      in
      (* each script entry prepares an op against base from a distinct replica *)
      let ops =
        List.mapi
          (fun i (e, add, salt) ->
            let rep = Printf.sprintf "r%d" (i + 1) in
            if add then Awset.prepare_add base ~dot:(dot rep salt) e
            else Awset.prepare_remove base e)
          script
      in
      let s1 = List.fold_left Awset.apply base ops in
      let s2 = List.fold_left Awset.apply base (List.rev ops) in
      Awset.elements s1 = Awset.elements s2)

let prop_rwset_concurrent_convergence =
  QCheck.Test.make ~name:"rwset: concurrent ops commute" ~count:300
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 6)
            (triple (oneofl [ "a"; "b"; "c" ]) bool (int_range 1 100))))
    (fun script ->
      let basevv = vv [ ("base", 2) ] in
      let base =
        List.fold_left
          (fun s (e, i) ->
            Rwset.apply s
              (Rwset.prepare_add s ~dot:(dot "base" i)
                 ~vv:(vv [ ("base", i) ])
                 e))
          Rwset.empty
          [ ("a", 1); ("b", 2) ]
      in
      let ops =
        List.mapi
          (fun i (e, add, salt) ->
            let rep = Printf.sprintf "r%d" (i + 1) in
            let opvv = Vclock.set basevv rep salt in
            if add then Rwset.prepare_add base ~dot:(dot rep salt) ~vv:opvv e
            else Rwset.prepare_remove base ~vv:opvv e)
          script
      in
      let s1 = List.fold_left Rwset.apply base ops in
      let s2 = List.fold_left Rwset.apply base (List.rev ops) in
      Rwset.elements s1 = Rwset.elements s2)

(* ------------------------------------------------------------------ *)
(* Unique identifiers (pre-partitioned)                                *)
(* ------------------------------------------------------------------ *)

let test_idgen_unique_across_replicas () =
  let g1 = Idgen.create "r1" and g2 = Idgen.create "r2" in
  let ids =
    List.init 100 (fun _ -> Idgen.fresh g1)
    @ List.init 100 (fun _ -> Idgen.fresh g2)
  in
  Alcotest.(check int) "no collisions" 200
    (List.length (List.sort_uniq String.compare ids))

let test_idgen_blocks_disjoint () =
  let b0 = Idgen.block ~index:0 ~n_replicas:3 in
  let b1 = Idgen.block ~index:1 ~n_replicas:3 in
  let b2 = Idgen.block ~index:2 ~n_replicas:3 in
  let ids =
    List.concat_map (fun b -> List.init 50 (fun _ -> Idgen.fresh_int b))
      [ b0; b1; b2 ]
  in
  Alcotest.(check int) "disjoint partitions" 150
    (List.length (List.sort_uniq compare ids));
  match Idgen.block ~index:3 ~n_replicas:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range index must be rejected"

(* ------------------------------------------------------------------ *)
(* Garbage collection at the CRDT level                                *)
(* ------------------------------------------------------------------ *)

let test_rwset_gc_drops_stable_barrier () =
  let add s rep cnt e =
    Rwset.apply s
      (Rwset.prepare_add s ~dot:(dot rep cnt) ~vv:(vv [ (rep, cnt) ]) e)
  in
  let s = add Rwset.empty "r1" 1 "x" in
  let s = Rwset.apply s (Rwset.prepare_remove s ~vv:(vv [ ("r1", 2) ]) "x") in
  Alcotest.(check bool) "barrier present" true (Rwset.metadata_size s > 0);
  (* the barrier is stable: everyone has seen r1's event 2 *)
  let s' = Rwset.gc ~stable:(vv [ ("r1", 2) ]) s in
  Alcotest.(check int) "all metadata reclaimed" 0 (Rwset.metadata_size s');
  Alcotest.(check bool) "still absent" false (Rwset.mem "x" s')

let test_rwset_gc_keeps_unstable_barrier () =
  let s =
    Rwset.apply Rwset.empty
      (Rwset.prepare_remove Rwset.empty ~vv:(vv [ ("r1", 5) ]) "x")
  in
  let s' = Rwset.gc ~stable:(vv [ ("r1", 3) ]) s in
  Alcotest.(check bool) "unstable barrier kept" true
    (Rwset.metadata_size s' > 0);
  (* a concurrent add arriving later still loses *)
  let s'' =
    Rwset.apply s'
      (Rwset.prepare_add s' ~dot:(dot "r2" 1) ~vv:(vv [ ("r2", 1) ]) "x")
  in
  Alcotest.(check bool) "remove still wins" false (Rwset.mem "x" s'')

let test_awset_gc_keeps_live_payloads () =
  let s =
    Awset.apply Awset.empty
      (Awset.prepare_add ~payload:"keep" Awset.empty ~dot:(dot "r1" 1) "x")
  in
  let s' = Awset.gc ~stable:(vv [ ("r1", 9) ]) s in
  Alcotest.(check (option string)) "live element untouched" (Some "keep")
    (Awset.payload "x" s')

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative; prop_merge_idempotent; prop_merge_associative;
      prop_min_pointwise; prop_to_list_roundtrip;
      prop_pncounter_order_independent; prop_pncounter_quick_value;
      prop_bcounter_quick_value; prop_bcounter_conservation;
      prop_awset_concurrent_convergence; prop_rwset_concurrent_convergence;
    ]

let () =
  Alcotest.run "ipa_crdt"
    [
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick test_vclock_basics;
          Alcotest.test_case "order" `Quick test_vclock_order;
          Alcotest.test_case "compare" `Quick test_vclock_compare;
          Alcotest.test_case "replica namespace isolated" `Quick
            test_vclock_replica_namespace_isolated;
        ] );
      ( "awset",
        [
          Alcotest.test_case "add/remove" `Quick test_awset_add_remove;
          Alcotest.test_case "add wins" `Quick test_awset_add_wins;
          Alcotest.test_case "payload" `Quick test_awset_payload;
          Alcotest.test_case "touch preserves payload" `Quick
            test_awset_touch_preserves_payload;
          Alcotest.test_case "wildcard remove" `Quick test_awset_wildcard_remove;
          Alcotest.test_case "wildcard is add-wins" `Quick
            test_awset_wildcard_add_wins;
        ] );
      ( "rwset",
        [
          Alcotest.test_case "add/remove" `Quick test_rwset_add_remove;
          Alcotest.test_case "remove wins" `Quick test_rwset_remove_wins;
          Alcotest.test_case "causal re-add" `Quick test_rwset_causal_readd;
          Alcotest.test_case "wildcard kills concurrent adds" `Quick
            test_rwset_wildcard_kills_concurrent_adds;
        ] );
      ( "counters",
        [
          Alcotest.test_case "pncounter" `Quick test_pncounter;
          Alcotest.test_case "bcounter rights" `Quick test_bcounter_rights;
          Alcotest.test_case "bcounter floor" `Quick test_bcounter_never_negative;
          Alcotest.test_case "bcounter demand advisory" `Quick
            test_bcounter_demand_advisory;
          Alcotest.test_case "compcounter quick raw value" `Quick
            test_compcounter_quick_raw_value;
        ] );
      ( "registers",
        [
          Alcotest.test_case "lww" `Quick test_lww;
          Alcotest.test_case "lww tiebreak" `Quick test_lww_tiebreak;
          Alcotest.test_case "mvreg" `Quick test_mvreg_concurrent;
        ] );
      ( "idgen",
        [
          Alcotest.test_case "unique across replicas" `Quick
            test_idgen_unique_across_replicas;
          Alcotest.test_case "disjoint blocks" `Quick test_idgen_blocks_disjoint;
        ] );
      ( "gc",
        [
          Alcotest.test_case "rwset drops stable barrier" `Quick
            test_rwset_gc_drops_stable_barrier;
          Alcotest.test_case "rwset keeps unstable barrier" `Quick
            test_rwset_gc_keeps_unstable_barrier;
          Alcotest.test_case "awset keeps live payloads" `Quick
            test_awset_gc_keeps_live_payloads;
        ] );
      ( "compensation",
        [
          Alcotest.test_case "compset within bound" `Quick
            test_compset_within_bound;
          Alcotest.test_case "compset compensates" `Quick test_compset_compensates;
          Alcotest.test_case "compset deterministic" `Quick
            test_compset_deterministic_victims;
          Alcotest.test_case "compcounter" `Quick test_compcounter;
          Alcotest.test_case "compcounter clean read" `Quick
            test_compcounter_no_violation_read;
          Alcotest.test_case "ops carry bounds" `Quick
            test_comp_ops_carry_bounds;
        ] );
      ("properties", qcheck_tests);
    ]
