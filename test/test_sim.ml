(** Tests for [ipa_sim]: the RNG, the discrete-event engine, the network
    model and the metrics collector. *)

open Ipa_sim

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic seed =
  let a = Rng.create seed and b = Rng.create seed in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds seed =
  let g = Rng.create seed in
  for _ = 1 to 1000 do
    let v = Rng.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let f = Rng.float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent seed =
  let g = Rng.create seed in
  let a = Rng.split g and b = Rng.split g in
  let va = List.init 10 (fun _ -> Rng.int a 1000) in
  let vb = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_rng_uniform_mean seed =
  let g = Rng.create seed in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform g 10.0 20.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 15" true (mean > 14.5 && mean < 15.5)

let test_rng_exponential_mean seed =
  let g = Rng.create seed in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential g 5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (mean > 4.7 && mean < 5.3)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:10.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  Engine.schedule e ~delay:10.0 (fun () ->
      Engine.schedule e ~delay:5.0 (fun () -> fired := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 0.001)) "nested event at 15" 15.0 !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run_until e 5.0;
  Alcotest.(check int) "five events by t=5" 5 !count;
  Alcotest.(check (float 0.001)) "clock at horizon" 5.0 (Engine.now e);
  Engine.run_until e 100.0;
  Alcotest.(check int) "rest executed" 10 !count

let test_engine_many_events seed =
  let e = Engine.create () in
  let g = Rng.create seed in
  let count = ref 0 in
  for _ = 1 to 10_000 do
    Engine.schedule e ~delay:(Rng.uniform g 0.0 1000.0) (fun () -> incr count)
  done;
  Engine.run e;
  Alcotest.(check int) "all fire" 10_000 !count;
  Alcotest.(check int) "executed counter" 10_000 (Engine.events_executed e)

let test_engine_monotonic_time seed =
  let e = Engine.create () in
  let g = Rng.create seed in
  let last = ref 0.0 in
  let ok = ref true in
  for _ = 1 to 1000 do
    Engine.schedule e ~delay:(Rng.uniform g 0.0 100.0) (fun () ->
        if Engine.now e < !last then ok := false;
        last := Engine.now e)
  done;
  Engine.run e;
  Alcotest.(check bool) "time never goes backwards" true !ok

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)
(* ------------------------------------------------------------------ *)

let test_net_matrix () =
  let n = Net.create ~jitter:0.0 ~seed:1 () in
  Alcotest.(check (float 0.01)) "east-west rtt" 80.0
    (Net.rtt n "us-east" "us-west");
  Alcotest.(check (float 0.01)) "symmetric" 80.0 (Net.rtt n "us-west" "us-east");
  Alcotest.(check (float 0.01)) "eu-west rtt" 160.0
    (Net.rtt n "eu-west" "us-west");
  Alcotest.(check (float 0.01)) "lan" 0.5 (Net.rtt n "us-east" "us-east");
  Alcotest.(check (float 0.01)) "one way" 40.0
    (Net.one_way n "us-east" "us-west")

let test_net_jitter_bounds seed =
  let n = Net.create ~jitter:0.1 ~seed () in
  for _ = 1 to 500 do
    let r = Net.rtt n "us-east" "us-west" in
    Alcotest.(check bool) "within ±10%" true (r >= 72.0 && r <= 88.0)
  done

let test_net_unknown_pair () =
  let n = Net.create ~seed:3 () in
  match Net.rtt n "us-east" "mars" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let faulty = Testutil.faulty_net

let count_deliveries n ~sends =
  let total = ref 0 in
  for _ = 1 to sends do
    total :=
      !total + List.length (Net.deliveries n ~now:0.0 ~src:"us-east" ~dst:"us-west")
  done;
  !total

let test_faults_deterministic seed =
  let run () =
    let n = faulty ~loss:0.3 ~duplication:0.2 ~tail:0.1 ~seed () in
    List.init 200 (fun _ ->
        Net.deliveries n ~now:0.0 ~src:"us-east" ~dst:"us-west")
  in
  Alcotest.(check bool) "same seed, same fault decisions" true (run () = run ())

let test_no_faults_is_lossless seed =
  let n = faulty ~seed () in
  let sends = 1_000 in
  Alcotest.(check int) "every send delivered once" sends
    (count_deliveries n ~sends);
  let s = Net.stats n in
  Alcotest.(check int) "sent counted" sends s.Net.sent;
  Alcotest.(check int) "no drops" 0 s.Net.dropped;
  Alcotest.(check int) "no duplicates" 0 s.Net.duplicated

let test_loss_rate seed =
  let n = faulty ~loss:0.1 ~seed () in
  let sends = 20_000 in
  ignore (count_deliveries n ~sends);
  let s = Net.stats n in
  let rate = float_of_int s.Net.dropped /. float_of_int sends in
  Alcotest.(check bool) "~10% dropped" true (rate > 0.08 && rate < 0.12)

let test_duplication_rate seed =
  let n = faulty ~duplication:0.1 ~seed () in
  let sends = 20_000 in
  let delivered = count_deliveries n ~sends in
  let s = Net.stats n in
  let rate = float_of_int s.Net.duplicated /. float_of_int sends in
  Alcotest.(check bool) "~10% duplicated" true (rate > 0.08 && rate < 0.12);
  Alcotest.(check int) "each duplicate is one extra copy" (sends + s.Net.duplicated)
    delivered

let test_tail_latency seed =
  let n = faulty ~tail:0.5 ~seed () in
  let base = Net.one_way n "us-east" "us-west" in
  let slow = ref 0 and total = ref 0 in
  for _ = 1 to 1_000 do
    List.iter
      (fun d ->
        incr total;
        if d > 2.0 *. base then incr slow)
      (Net.deliveries n ~now:0.0 ~src:"us-east" ~dst:"us-west")
  done;
  let rate = float_of_int !slow /. float_of_int !total in
  Alcotest.(check bool) "~half the packets hit the tail" true
    (rate > 0.4 && rate < 0.6)

let test_partition_window seed =
  let p =
    {
      Net.parts = ([ "us-east" ], [ "eu-west" ]);
      from_ms = 1_000.0;
      until_ms = 2_000.0;
    }
  in
  let n = faulty ~partitions:[ p ] ~seed () in
  Alcotest.(check bool) "cut inside the window" true
    (Net.partitioned n ~now:1_500.0 "us-east" "eu-west");
  Alcotest.(check bool) "symmetric" true
    (Net.partitioned n ~now:1_500.0 "eu-west" "us-east");
  Alcotest.(check bool) "healed after" false
    (Net.partitioned n ~now:2_500.0 "us-east" "eu-west");
  Alcotest.(check bool) "before the window" false
    (Net.partitioned n ~now:500.0 "us-east" "eu-west");
  Alcotest.(check bool) "uninvolved pair unaffected" false
    (Net.partitioned n ~now:1_500.0 "us-east" "us-west");
  Alcotest.(check (list (float 0.001))) "no delivery across the cut" []
    (Net.deliveries n ~now:1_500.0 ~src:"us-east" ~dst:"eu-west");
  Alcotest.(check int) "delivers after heal" 1
    (List.length (Net.deliveries n ~now:2_500.0 ~src:"us-east" ~dst:"eu-west"))

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds seed =
  let g = Rng.create seed in
  let z = Workload.zipf ~theta:0.99 100 in
  for _ = 1 to 5_000 do
    let r = Workload.draw g z in
    Alcotest.(check bool) "rank in [0,n)" true (r >= 0 && r < 100)
  done;
  (match Workload.zipf 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty population must be rejected");
  match Workload.zipf ~theta:1.0 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "theta = 1 must be rejected"

let test_zipf_skew seed =
  let g = Rng.create seed in
  let n = 1_000 in
  let z = Workload.zipf ~theta:0.99 n in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let r = Workload.draw g z in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 is the hottest" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  let top10 = ref 0 in
  for i = 0 to 9 do
    top10 := !top10 + counts.(i)
  done;
  (* at theta = 0.99 the top-10 ranks of 1000 carry ~39% of the mass *)
  Alcotest.(check bool) "top-10 ranks absorb >= 30% of draws" true
    (float_of_int !top10 /. float_of_int draws >= 0.3)

let test_zipf_theta0_uniform seed =
  let g = Rng.create seed in
  let n = 1_000 in
  let z = Workload.zipf ~theta:0.0 n in
  let sum = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    sum := !sum + Workload.draw g z
  done;
  let mean = float_of_int !sum /. float_of_int draws in
  Alcotest.(check bool) "theta = 0 degenerates to uniform" true
    (mean > 450.0 && mean < 550.0)

let test_workload_deterministic seed =
  let z = Workload.zipf ~theta:0.9 500 in
  let open_ () =
    Workload.open_loop ~rng:(Rng.create seed) ~rate_per_s:500.0
      ~horizon_ms:2_000.0 ~clients:4 z
  in
  Alcotest.(check bool) "open loop: same seed, same stream" true
    (open_ () = open_ ());
  let closed () =
    Workload.closed_loop ~rng:(Rng.create seed) ~clients:5 ~think_ms:20.0
      ~horizon_ms:2_000.0 z
  in
  Alcotest.(check bool) "closed loop: same seed, same stream" true
    (closed () = closed ())

let test_open_loop_shape seed =
  let z = Workload.zipf 100 in
  let rate = 1_000.0 and horizon = 4_000.0 and clients = 3 in
  let evs =
    Workload.open_loop ~rng:(Rng.create seed) ~rate_per_s:rate
      ~horizon_ms:horizon ~clients z
  in
  let n = List.length evs in
  let expected = rate *. horizon /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "event count tracks the offered rate (%d)" n)
    true
    (float_of_int n > 0.85 *. expected && float_of_int n < 1.15 *. expected);
  let ok = ref true and last = ref 0.0 in
  List.iteri
    (fun i (e : Workload.event) ->
      if e.Workload.at_ms < !last || e.Workload.at_ms >= horizon then
        ok := false;
      last := e.Workload.at_ms;
      if e.Workload.client <> i mod clients then ok := false;
      if e.Workload.rank < 0 || e.Workload.rank >= 100 then ok := false)
    evs;
  Alcotest.(check bool)
    "times nondecreasing within horizon, clients round-robin, ranks bounded"
    true !ok

let test_closed_loop_shape seed =
  let z = Workload.zipf 100 in
  let clients = 8 and think = 10.0 and horizon = 2_000.0 in
  let evs =
    Workload.closed_loop ~rng:(Rng.create seed) ~clients ~think_ms:think
      ~horizon_ms:horizon z
  in
  let n = List.length evs in
  let expected = float_of_int clients *. horizon /. think in
  Alcotest.(check bool)
    (Printf.sprintf "throughput bounded by clients/think (%d)" n)
    true
    (float_of_int n > 0.8 *. expected && float_of_int n < 1.2 *. expected);
  let ok = ref true and last = ref 0.0 in
  let seen = Array.make clients false in
  List.iter
    (fun (e : Workload.event) ->
      if e.Workload.at_ms < !last || e.Workload.at_ms >= horizon then
        ok := false;
      last := e.Workload.at_ms;
      if e.Workload.client < 0 || e.Workload.client >= clients then ok := false
      else seen.(e.Workload.client) <- true)
    evs;
  Alcotest.(check bool) "merged in time order within horizon" true !ok;
  Alcotest.(check bool) "every client issues events" true
    (Array.for_all (fun x -> x) seen)

let test_closed_loop_split_stability seed =
  (* per-client streams come from Rng.split forks in client order, so
     adding clients never perturbs the existing ones *)
  let z = Workload.zipf 200 in
  let run clients =
    Workload.closed_loop ~rng:(Rng.create seed) ~clients ~think_ms:15.0
      ~horizon_ms:1_500.0 z
  in
  let of_client c evs =
    List.filter (fun (e : Workload.event) -> e.Workload.client = c) evs
  in
  let small = run 3 and big = run 5 in
  for c = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "client %d unchanged by extra clients" c)
      true
      (of_client c small = of_client c big)
  done

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.record m ~op:"a" 10.0;
  Metrics.record m ~op:"a" 20.0;
  Metrics.record m ~op:"b" 5.0;
  Alcotest.(check int) "per-op count" 2 (Metrics.count m ~op:"a" ());
  Alcotest.(check int) "total count" 3 (Metrics.count m ());
  Alcotest.(check (float 0.001)) "per-op mean" 15.0
    (Metrics.mean_latency m ~op:"a" ());
  Alcotest.(check (float 0.1)) "overall mean" 11.666
    (Metrics.mean_latency m ())

let test_metrics_percentile () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.record m ~op:"x" (float_of_int i)
  done;
  Alcotest.(check (float 2.0)) "p95" 95.0 (Metrics.p95_latency m ~op:"x" ());
  Alcotest.(check bool) "stddev positive" true
    (Metrics.stddev_latency m ~op:"x" () > 0.0)

let test_percentile_nearest_rank () =
  let samples = List.init 10 (fun i -> float_of_int (i + 1)) in
  (* regression: truncation used to report p95 of 1..10 as 9.0 *)
  Alcotest.(check (float 0.001)) "p95 of 1..10" 10.0
    (Metrics.percentile 95.0 samples);
  Alcotest.(check (float 0.001)) "p50 of 1..10" 5.0
    (Metrics.percentile 50.0 samples);
  Alcotest.(check (float 0.001)) "p100 is the max" 10.0
    (Metrics.percentile 100.0 samples);
  Alcotest.(check (float 0.001)) "singleton" 7.0 (Metrics.percentile 99.0 [ 7.0 ])

let test_percentile_boundary_ranks () =
  (* boundary ranks: p0 is the minimum, p100 the maximum, and a single
     sample answers every percentile *)
  let samples = [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (float 0.001)) "p0 is the min" 1.0
    (Metrics.percentile 0.0 samples);
  Alcotest.(check (float 0.001)) "p100 is the max" 3.0
    (Metrics.percentile 100.0 samples);
  Alcotest.(check (float 0.001)) "single sample p0" 7.0
    (Metrics.percentile 0.0 [ 7.0 ]);
  Alcotest.(check (float 0.001)) "single sample p50" 7.0
    (Metrics.percentile 50.0 [ 7.0 ]);
  Alcotest.(check (float 0.001)) "single sample p100" 7.0
    (Metrics.percentile 100.0 [ 7.0 ]);
  Alcotest.(check (float 0.001)) "empty sample set" 0.0
    (Metrics.percentile 50.0 [])

let test_percentiles_batch_matches_single seed =
  let g = Rng.create seed in
  let samples = List.init 500 (fun _ -> Rng.uniform g 0.0 1000.0) in
  let ps = [ 10.0; 50.0; 90.0; 95.0; 99.0 ] in
  List.iter2
    (fun p batch ->
      Alcotest.(check (float 0.001))
        (Fmt.str "p%.0f" p)
        (Metrics.percentile p samples)
        batch)
    ps
    (Metrics.percentiles ps samples)

let test_delivery_visibility () =
  let m = Metrics.create () in
  Metrics.record_visibility m 40.0;
  Metrics.record_visibility m 80.0;
  let d = m.Metrics.delivery in
  Alcotest.(check int) "visibility samples counted" 2 d.Metrics.visibility_n;
  Alcotest.(check (float 0.001)) "p50 over samples" 40.0
    (Metrics.percentile 50.0 d.Metrics.visibility)

let test_metrics_throughput () =
  let m = Metrics.create () in
  m.Metrics.started_at <- 0.0;
  m.Metrics.finished_at <- 2_000.0;
  for _ = 1 to 100 do
    Metrics.record m ~op:"x" 1.0
  done;
  Alcotest.(check (float 0.001)) "ops per second" 50.0 (Metrics.throughput m)

let test_metrics_empty () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.001)) "empty mean" 0.0 (Metrics.mean_latency m ());
  Alcotest.(check (float 0.001)) "empty throughput" 0.0 (Metrics.throughput m)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_engine_executes_all =
  QCheck.Test.make ~name:"engine executes every scheduled event" ~count:100
    QCheck.(make Gen.(list_size (int_range 0 100) (float_bound_inclusive 1000.0)))
    (fun delays ->
      let e = Engine.create () in
      let count = ref 0 in
      List.iter
        (fun d -> Engine.schedule e ~delay:d (fun () -> incr count))
        delays;
      Engine.run e;
      !count = List.length delays)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0)))
    (fun samples ->
      Metrics.percentile 50.0 samples <= Metrics.percentile 95.0 samples
      && Metrics.percentile 95.0 samples <= Metrics.percentile 100.0 samples)

let qcheck_tests =
  List.map
    (Testutil.to_alcotest ~default:0)
    [ prop_engine_executes_all; prop_percentile_monotone ]

let () =
  Alcotest.run "ipa_sim"
    [
      ( "rng",
        [
          Testutil.seeded_case "deterministic" `Quick ~default:7 test_rng_deterministic;
          Testutil.seeded_case "bounds" `Quick ~default:3 test_rng_bounds;
          Testutil.seeded_case "split" `Quick ~default:5 test_rng_split_independent;
          Testutil.seeded_case "uniform mean" `Quick ~default:11 test_rng_uniform_mean;
          Testutil.seeded_case "exponential mean" `Quick ~default:13
            test_rng_exponential_mean;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Testutil.seeded_case "many events" `Quick ~default:17
            test_engine_many_events;
          Testutil.seeded_case "monotonic time" `Quick ~default:19
            test_engine_monotonic_time;
        ] );
      ( "net",
        [
          Alcotest.test_case "matrix" `Quick test_net_matrix;
          Testutil.seeded_case "jitter bounds" `Quick ~default:2 test_net_jitter_bounds;
          Alcotest.test_case "unknown pair" `Quick test_net_unknown_pair;
        ] );
      ( "faults",
        [
          Testutil.seeded_case "deterministic" `Quick ~default:42
            test_faults_deterministic;
          Testutil.seeded_case "no faults lossless" `Quick ~default:5
            test_no_faults_is_lossless;
          Testutil.seeded_case "loss rate" `Quick ~default:6 test_loss_rate;
          Testutil.seeded_case "duplication rate" `Quick ~default:7
            test_duplication_rate;
          Testutil.seeded_case "tail latency" `Quick ~default:8 test_tail_latency;
          Testutil.seeded_case "partition window" `Quick ~default:9
            test_partition_window;
        ] );
      ( "workload",
        [
          Testutil.seeded_case "zipf bounds" `Quick ~default:29 test_zipf_bounds;
          Testutil.seeded_case "zipf skew" `Quick ~default:31 test_zipf_skew;
          Testutil.seeded_case "theta 0 uniform" `Quick ~default:37
            test_zipf_theta0_uniform;
          Testutil.seeded_case "deterministic streams" `Quick ~default:41
            test_workload_deterministic;
          Testutil.seeded_case "open-loop shape" `Quick ~default:43
            test_open_loop_shape;
          Testutil.seeded_case "closed-loop shape" `Quick ~default:47
            test_closed_loop_shape;
          Testutil.seeded_case "closed-loop split stability" `Quick ~default:53
            test_closed_loop_split_stability;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "percentile" `Quick test_metrics_percentile;
          Alcotest.test_case "nearest rank" `Quick test_percentile_nearest_rank;
          Alcotest.test_case "boundary ranks" `Quick
            test_percentile_boundary_ranks;
          Testutil.seeded_case "batch percentiles" `Quick ~default:23
            test_percentiles_batch_matches_single;
          Alcotest.test_case "visibility samples" `Quick
            test_delivery_visibility;
          Alcotest.test_case "throughput" `Quick test_metrics_throughput;
          Alcotest.test_case "empty" `Quick test_metrics_empty;
        ] );
      ("properties", qcheck_tests);
    ]
