(** Tests for [ipa_check]: the trace codec, generator/oracle
    determinism, short fuzz campaigns on the repaired catalog apps, and
    the teeth of the oracle on the unrepaired baseline (found →
    shrunk → replayed). *)

open Ipa_check
open Ipa_sim

(* ------------------------------------------------------------------ *)
(* Trace codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip seed =
  (* decode ∘ encode is the identity on generated traces, across every
     app, both variants, several seeds — including exact float
     round-trips of event timestamps and fault probabilities *)
  List.iter
    (fun app ->
      List.iter
        (fun repaired ->
          List.iter
            (fun s ->
              let t = Gen.generate ~app ~repaired ~seed:s () in
              let t' = Trace.of_string (Trace.to_string t) in
              if t' <> t then
                Alcotest.failf "codec round-trip changed %s/%b/seed %d" app
                  repaired s)
            [ seed; seed + 1; seed + 2 ])
        [ true; false ])
    Harness.app_names

let test_codec_rejects_garbage () =
  List.iter
    (fun src ->
      match Trace.of_string src with
      | exception Trace.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed trace %S" src)
    [ ""; "not a trace"; "app tournament\nrepaired maybe" ]

let test_codec_read_events () =
  (* a trace carrying all four read levels and all four escrow ops
     round-trips exactly — including the bounded-staleness float *)
  let base = Gen.generate ~app:"ticket" ~repaired:true ~seed:1 () in
  let evs =
    [
      Trace.Ev_read { at = 10.0; replica = 0; level = Trace.R_weak };
      Trace.Ev_read { at = 11.5; replica = 1; level = Trace.R_bounded 250.0 };
      Trace.Ev_read { at = 12.25; replica = 2; level = Trace.R_strong };
      Trace.Ev_read { at = 13.125; replica = 0; level = Trace.R_interval };
      Trace.Ev_escrow { at = 14.0; replica = 1; eop = Trace.Es_inc 3 };
      Trace.Ev_escrow { at = 15.0; replica = 2; eop = Trace.Es_dec 2 };
      Trace.Ev_escrow
        { at = 16.0; replica = 0; eop = Trace.Es_transfer { dst = 1; n = 2 } };
      Trace.Ev_escrow
        { at = 17.0; replica = 1; eop = Trace.Es_hmove { dst = 2; n = 1 } };
    ]
  in
  let t = { base with Trace.events = evs @ base.Trace.events } in
  let t' = Trace.of_string (Trace.to_string t) in
  Alcotest.(check bool) "read/escrow events round-trip" true (t = t');
  Alcotest.(check int) "n_reads counts read + escrow events" 8
    (Trace.n_reads t')

let test_codec_rejects_bad_read_lines () =
  (* event lines live at the end of the encoding, so a malformed
     read/escrow line appended to a valid trace must be rejected *)
  let txt =
    Trace.to_string (Gen.generate ~app:"ticket" ~repaired:true ~seed:1 ())
  in
  List.iter
    (fun line ->
      match Trace.of_string (txt ^ line ^ "\n") with
      | exception Trace.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed event line %S" line)
    [
      "read 1.0 0 fuzzy";
      "read 1.0 0 bounded";
      "read 1.0 0";
      "escrow 1.0 0 squish 3";
      "escrow 1.0 0 transfer 1";
      "escrow 1.0 0 inc";
    ]

(* ------------------------------------------------------------------ *)
(* Generator and oracle determinism                                    *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic seed =
  let t1 = Gen.generate ~app:"ticket" ~repaired:true ~seed () in
  let t2 = Gen.generate ~app:"ticket" ~repaired:true ~seed () in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  let t3 = Gen.generate ~app:"ticket" ~repaired:true ~seed:(seed + 1) () in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_oracle_deterministic seed =
  (* the same trace run twice through the same env (snapshot-restored
     between runs) must produce bit-identical outcomes *)
  let tr = Gen.generate ~app:"tournament" ~repaired:true ~seed () in
  let env = Oracle.make_env (Harness.make ~app:"tournament" ~repaired:true) in
  let o1 = Oracle.run env tr in
  let o2 = Oracle.run env tr in
  Alcotest.(check string) "digest stable across runs" o1.Oracle.digest
    o2.Oracle.digest;
  Alcotest.(check bool) "full outcome stable" true (o1 = o2);
  (* and a fresh env agrees with the reused one *)
  let o3 = Oracle.check (Harness.make ~app:"tournament" ~repaired:true) tr in
  Alcotest.(check bool) "fresh env agrees" true (o1 = o3)

(* ------------------------------------------------------------------ *)
(* Campaigns: repaired apps pass, the baseline is caught               *)
(* ------------------------------------------------------------------ *)

let test_repaired_apps_pass seed =
  List.iter
    (fun app ->
      let r = Fuzz.campaign ~app ~repaired:true ~seed ~runs:10 () in
      Alcotest.(check int) (app ^ ": no failing schedules") 0
        r.Fuzz.failed_runs)
    Harness.app_names

let test_unrepaired_tournament_caught seed =
  let r = Fuzz.campaign ~app:"tournament" ~repaired:false ~seed ~runs:50 () in
  match r.Fuzz.first with
  | None -> Alcotest.fail "oracle has no teeth: no violation in 50 schedules"
  | Some ce ->
      Alcotest.(check bool) "failure recorded" true (ce.Fuzz.failures <> []);
      Alcotest.(check bool) "shrunk to <= 10 events" true
        (Trace.n_events ce.Fuzz.trace <= 10);
      Alcotest.(check bool) "shrunk trace carries expected digest" true
        (ce.Fuzz.trace.Trace.expect_digest <> None);
      (* the emitted counterexample replays bit-identically, including
         through the text codec (what --replay consumes) *)
      let reparsed = Trace.of_string (Trace.to_string ce.Fuzz.trace) in
      let rp = Fuzz.replay reparsed in
      Alcotest.(check bool) "replay fails the same way" true rp.Fuzz.r_failed;
      Alcotest.(check bool) "replay digest matches recording" true
        rp.Fuzz.r_as_expected

let test_crash_recovery_campaign seed =
  (* tail-window crash–recover events armed: every schedule must
     recover from WAL + snapshot and converge bit-identically to its
     crash-free reference (Oracle.Recovery_diverged otherwise) *)
  List.iter
    (fun app ->
      let r =
        Fuzz.campaign ~app ~repaired:true ~seed ~runs:8 ~n_ops:25 ~crashes:2 ()
      in
      Alcotest.(check int) (app ^ ": no crash-recovery divergence") 0
        r.Fuzz.failed_runs)
    [ "tournament"; "ticket" ]

let test_crash_events_preserve_seed_stream seed =
  (* crash draws are appended after all existing draws, so crashes=0
     reproduces the historical trace for the same seed byte-for-byte *)
  let t0 = Gen.generate ~app:"twitter" ~repaired:true ~seed () in
  let t1 = Gen.generate ~app:"twitter" ~repaired:true ~seed ~crashes:0 () in
  Alcotest.(check bool) "crashes=0 is the identity" true (t0 = t1);
  let t2 = Gen.generate ~app:"twitter" ~repaired:true ~seed ~crashes:2 () in
  Alcotest.(check int) "crash events appended" 2 (Trace.n_crashes t2);
  let strip =
    {
      t2 with
      Trace.events =
        List.filter
          (function Trace.Ev_crash _ -> false | _ -> true)
          t2.Trace.events;
    }
  in
  Alcotest.(check bool) "op/sync stream unchanged by crash arming" true
    (strip = t0)

let test_read_events_preserve_seed_stream seed =
  (* the read/escrow draws follow even the crash draws, so reads=0
     reproduces the historical trace byte for byte *)
  let t0 = Gen.generate ~app:"twitter" ~repaired:true ~seed () in
  let t1 = Gen.generate ~app:"twitter" ~repaired:true ~seed ~reads:0 () in
  Alcotest.(check bool) "reads=0 is the identity" true (t0 = t1);
  let t2 =
    Gen.generate ~app:"twitter" ~repaired:true ~seed ~crashes:2 ~reads:6 ()
  in
  Alcotest.(check int) "read/escrow events injected" 6 (Trace.n_reads t2);
  Alcotest.(check int) "crash events unaffected" 2 (Trace.n_crashes t2);
  (* reads live inside the operation span: every event after the first
     crash must be a crash — the recovery oracle's reference comparison
     depends on that placement *)
  let rec tail_is_crashes seen_crash = function
    | [] -> true
    | Trace.Ev_crash _ :: rest -> tail_is_crashes true rest
    | _ :: rest -> (not seen_crash) && tail_is_crashes false rest
  in
  Alcotest.(check bool) "reads precede the crash tail" true
    (tail_is_crashes false t2.Trace.events);
  (* stripping the read/escrow events recovers the crash-armed trace *)
  let strip =
    {
      t2 with
      Trace.events =
        List.filter
          (function
            | Trace.Ev_read _ | Trace.Ev_escrow _ -> false | _ -> true)
          t2.Trace.events;
    }
  in
  let t_crashes =
    Gen.generate ~app:"twitter" ~repaired:true ~seed ~crashes:2 ()
  in
  Alcotest.(check bool) "op/sync/crash stream unchanged by read arming" true
    (strip = t_crashes)

let test_escrow_skew_preserves_seed_stream seed =
  (* the demand-skew draws follow every other draw, so escrow_skew=0
     reproduces the historical trace for the same seed byte for byte *)
  let t0 = Gen.generate ~app:"ticket" ~repaired:true ~seed () in
  let t1 = Gen.generate ~app:"ticket" ~repaired:true ~seed ~escrow_skew:0 () in
  Alcotest.(check bool) "escrow_skew=0 is the identity" true (t0 = t1);
  let t2 =
    Gen.generate ~app:"ticket" ~repaired:true ~seed ~reads:4 ~escrow_skew:8 ()
  in
  let t2' =
    Gen.generate ~app:"ticket" ~repaired:true ~seed ~reads:4 ~escrow_skew:8 ()
  in
  Alcotest.(check bool) "skewed generation is deterministic" true (t2 = t2');
  Alcotest.(check int) "skew events injected on top of reads" 12
    (Trace.n_reads t2);
  (* stripping the read/escrow events recovers the unarmed schedule *)
  let strip =
    {
      t2 with
      Trace.events =
        List.filter
          (function
            | Trace.Ev_read _ | Trace.Ev_escrow _ -> false | _ -> true)
          t2.Trace.events;
    }
  in
  Alcotest.(check bool) "op/sync stream unchanged by skew arming" true
    (strip = t0)

let test_escrow_skew_campaign seed =
  (* demand-skewed escrow events armed: the conservation oracle audits
     rights/headroom identities across every schedule *)
  List.iter
    (fun app ->
      let r =
        Fuzz.campaign ~app ~repaired:true ~seed ~runs:8 ~n_ops:25
          ~escrow_skew:10 ()
      in
      Alcotest.(check int)
        (app ^ ": conservation oracles clean")
        0 r.Fuzz.failed_runs)
    [ "ticket"; "tournament" ]

let test_read_oracle_campaign seed =
  (* read/escrow events armed: on every schedule the oracle judges
     interval containment against the omniscient shadow, the
     bounded-staleness cover rule, and strong-read exactness *)
  List.iter
    (fun app ->
      let r =
        Fuzz.campaign ~app ~repaired:true ~seed ~runs:8 ~n_ops:25 ~reads:10 ()
      in
      Alcotest.(check int) (app ^ ": read oracles clean") 0 r.Fuzz.failed_runs)
    [ "twitter"; "tpcw" ]

(* ------------------------------------------------------------------ *)
(* Healing exhaustion is reported loudly, and distinctly               *)
(* ------------------------------------------------------------------ *)

let contains_substring ~(sub : string) (s : string) : bool =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_healing_exhausted_distinct seed =
  (* find a trace that actually needed healing rounds to converge, then
     rerun it with a zero round budget: the oracle must report
     Healing_exhausted — never misdiagnose the wedged harness as a
     Diverged convergence bug *)
  let env = Oracle.make_env (Harness.make ~app:"ticket" ~repaired:true) in
  let rec find s tries =
    if tries = 0 then
      Alcotest.fail "no trace needing healing rounds within 50 seeds"
    else
      let tr = Gen.generate ~app:"ticket" ~repaired:true ~seed:s () in
      let o = Oracle.run env tr in
      if o.Oracle.healing_rounds > 0 && o.Oracle.failures = [] then tr
      else find (s + 1) (tries - 1)
  in
  let tr = find seed 50 in
  let o = Oracle.run ~heal_budget:0 env tr in
  Alcotest.(check int) "no rounds spent" 0 o.Oracle.healing_rounds;
  let exhausted =
    List.filter_map
      (function
        | Oracle.Healing_exhausted { rounds; pending; divergent } ->
            Some (rounds, pending, divergent)
        | _ -> None)
      o.Oracle.failures
  in
  (match exhausted with
  | [ (rounds, pending, divergent) ] ->
      Alcotest.(check int) "budget recorded" 0 rounds;
      Alcotest.(check bool) "evidence of the wedge carried" true
        (pending > 0 || divergent <> [])
  | _ -> Alcotest.fail "expected exactly one Healing_exhausted failure");
  Alcotest.(check bool) "never misreported as Diverged" true
    (List.for_all
       (function Oracle.Diverged _ -> false | _ -> true)
       o.Oracle.failures);
  let rendered =
    String.concat "; "
      (List.map (Fmt.str "%a" Oracle.pp_failure) o.Oracle.failures)
  in
  Alcotest.(check bool) "failure names the exhaustion" true
    (contains_substring ~sub:"healing exhausted" rendered)

(* ------------------------------------------------------------------ *)
(* Fault-phase windows                                                 *)
(* ------------------------------------------------------------------ *)

let test_net_phase_windows () =
  let stormy = { Net.no_faults.Net.faults with Net.loss = 0.5 } in
  let net =
    Net.create ~jitter:0.0
      ~phases:[ { Net.p_from = 100.0; p_until = 200.0; p_faults = stormy } ]
      ~seed:1 ()
  in
  Alcotest.(check (float 0.0)) "baseline before the window" 0.0
    (Net.faults_at net ~now:99.9).Net.loss;
  Alcotest.(check (float 0.0)) "phase faults at the window start" 0.5
    (Net.faults_at net ~now:100.0).Net.loss;
  Alcotest.(check (float 0.0)) "phase faults inside the window" 0.5
    (Net.faults_at net ~now:199.9).Net.loss;
  Alcotest.(check (float 0.0)) "baseline again at the half-open end" 0.0
    (Net.faults_at net ~now:200.0).Net.loss

let () =
  Alcotest.run "ipa_check"
    [
      ( "trace codec",
        [
          Testutil.seeded_case "round-trip" `Quick ~default:1
            test_codec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "read/escrow events round-trip" `Quick
            test_codec_read_events;
          Alcotest.test_case "rejects bad read/escrow lines" `Quick
            test_codec_rejects_bad_read_lines;
        ] );
      ( "determinism",
        [
          Testutil.seeded_case "generator" `Quick ~default:7
            test_generator_deterministic;
          Testutil.seeded_case "oracle" `Quick ~default:3
            test_oracle_deterministic;
        ] );
      ( "campaigns",
        [
          Testutil.seeded_case "repaired apps pass" `Slow ~default:1
            test_repaired_apps_pass;
          Testutil.seeded_case "unrepaired tournament caught" `Slow ~default:1
            test_unrepaired_tournament_caught;
        ] );
      ( "crash recovery",
        [
          Testutil.seeded_case "crash-fuzz campaign recovers" `Slow ~default:1
            test_crash_recovery_campaign;
          Testutil.seeded_case "crash arming preserves the seed stream" `Quick
            ~default:5 test_crash_events_preserve_seed_stream;
        ] );
      ( "consistency reads",
        [
          Testutil.seeded_case "read arming preserves the seed stream" `Quick
            ~default:5 test_read_events_preserve_seed_stream;
          Testutil.seeded_case "read-oracle campaign passes" `Slow ~default:1
            test_read_oracle_campaign;
        ] );
      ( "escrow skew",
        [
          Testutil.seeded_case "skew arming preserves the seed stream" `Quick
            ~default:5 test_escrow_skew_preserves_seed_stream;
          Testutil.seeded_case "skewed conservation campaign passes" `Slow
            ~default:1 test_escrow_skew_campaign;
        ] );
      ( "oracle failure taxonomy",
        [
          Testutil.seeded_case "healing exhaustion reported distinctly" `Quick
            ~default:1 test_healing_exhausted_distinct;
        ] );
      ( "fault phases",
        [ Alcotest.test_case "phase windows" `Quick test_net_phase_windows ] );
    ]
