(** Shared test scaffolding: the three-region cluster, one-update
    transaction helpers, runtime environments, fault-plan builders, and
    seed plumbing.

    Every randomized test draws its seed through {!seed} so a CI
    failure is reproducible locally: set [IPA_TEST_SEED=<n>] to rerun
    with the seed the failing run printed; unset, each test keeps its
    historical fixed seed (bit-identical to the pre-existing suites). *)

open Ipa_crdt
open Ipa_store
open Ipa_sim
open Ipa_runtime

(* ------------------------------------------------------------------ *)
(* Seeds                                                               *)
(* ------------------------------------------------------------------ *)

(** The seed a randomized test should use: [IPA_TEST_SEED] when set
    (and numeric), the test's historical [default] otherwise. *)
let seed ~(default : int) () : int =
  match Sys.getenv_opt "IPA_TEST_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

(** An alcotest case whose body receives the resolved seed; on failure
    the seed is printed so the run can be replayed with
    [IPA_TEST_SEED=<n>]. *)
let seeded_case (name : string) speed ~(default : int) (f : int -> unit) :
    unit Alcotest.test_case =
  Alcotest.test_case name speed (fun () ->
      let s = seed ~default () in
      try f s
      with e ->
        Fmt.epr "[seed] %S failed; rerun with IPA_TEST_SEED=%d@." name s;
        raise e)

(** [QCheck_alcotest.to_alcotest] with the generator seeded from
    {!seed}; prints the seed when the property fails. *)
let to_alcotest ?(default = 0) (t : QCheck2.Test.t) : unit Alcotest.test_case =
  let s = seed ~default () in
  let name, speed, fn =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| s |]) t
  in
  ( name,
    speed,
    fun () ->
      try fn ()
      with e ->
        Fmt.epr "[seed] property %S failed; rerun with IPA_TEST_SEED=%d@." name
          s;
        raise e )

(* ------------------------------------------------------------------ *)
(* Cluster + store helpers                                             *)
(* ------------------------------------------------------------------ *)

let regions =
  [ ("dc-east", "us-east"); ("dc-west", "us-west"); ("dc-eu", "eu-west") ]

let three () = Cluster.create regions

(** One-update transaction adding [e] to awset [key]. *)
let add_to (rep : Replica.t) (key : string) (e : string) : Replica.batch =
  let tx = Txn.begin_ rep in
  let s = Obj.as_awset (Txn.get tx key Obj.T_awset) in
  Txn.update tx key
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) e));
  Option.get (Txn.commit tx)

let remove_from (rep : Replica.t) (key : string) (e : string) : Replica.batch =
  let tx = Txn.begin_ rep in
  let s = Obj.as_awset (Txn.get tx key Obj.T_awset) in
  Txn.update tx key (Obj.Op_awset (Awset.prepare_remove s e));
  Option.get (Txn.commit tx)

let elements (rep : Replica.t) (key : string) : string list =
  match Replica.peek rep key with
  | Some o -> Awset.elements (Obj.as_awset o)
  | None -> []

(** One-update transaction bumping pncounter [key] by [n]. *)
let counter_delta ?(key = "stock") (rep : Replica.t) (n : int) : Replica.batch
    =
  let tx = Txn.begin_ rep in
  let ctr = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
  Txn.update tx key
    (Obj.Op_pncounter (Pncounter.prepare ctr ~rep:rep.Replica.id n));
  Option.get (Txn.commit tx)

let counter_value ?(key = "stock") (rep : Replica.t) : int =
  match Replica.peek rep key with
  | Some o -> Pncounter.value (Obj.as_pncounter o)
  | None -> 0

(** Anti-entropy [send] callback delivering directly, no network. *)
let direct_send ~(src : Replica.t) ~(dst : Replica.t) (b : Replica.batch) :
    unit =
  ignore src;
  Replica.receive dst b

(* ------------------------------------------------------------------ *)
(* Network fault plans                                                 *)
(* ------------------------------------------------------------------ *)

(** A jitter-free network with the given fault mix. *)
let faulty_net ?(loss = 0.0) ?(duplication = 0.0) ?(tail = 0.0)
    ?(partitions = []) ~seed () : Net.t =
  Net.create ~jitter:0.0
    ~plan:
      {
        Net.faults = { Net.no_faults.Net.faults with loss; duplication; tail };
        partitions;
      }
    ~seed ()

(* ------------------------------------------------------------------ *)
(* Runtime environments                                                *)
(* ------------------------------------------------------------------ *)

(** A fresh engine + fault-free jitter-free network + three-region
    cluster under the given system mode. *)
let make (mode : Config.mode) : Engine.t * Config.t * Cluster.t =
  let engine = Engine.create () in
  let net = Net.create ~jitter:0.0 ~seed:1 () in
  let cluster = Cluster.create regions in
  let cfg = Config.create ~mode ~engine ~net ~cluster () in
  (engine, cfg, cluster)

(** Same, but with a fault plan on the wire and anti-entropy tuned for
    short test runs. *)
let make_faulty ~(seed : int) (plan : Net.plan) :
    Engine.t * Config.t * Cluster.t =
  let engine = Engine.create () in
  let net = Net.create ~jitter:0.0 ~plan ~seed () in
  let cluster = Cluster.create regions in
  let cfg =
    Config.create ~sync_interval_ms:250.0 ~sync_base_backoff_ms:300.0
      ~mode:Config.Local ~engine ~net ~cluster ()
  in
  (engine, cfg, cluster)

(** Execute one op through the runtime and drain the engine. *)
let execute_sync (engine : Engine.t) (cfg : Config.t) ~(region : string)
    (op : Config.op_exec) : float * Config.outcome =
  let result = ref None in
  Config.execute cfg ~client_region:region op ~complete:(fun lat o ->
      result := Some (lat, o));
  Engine.run engine;
  Option.get !result
