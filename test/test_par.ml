(** Multicore engine tests: the domain pool itself, domain-safety of
    the global interner, stats folding for per-worker analysis
    contexts, and the headline determinism properties — [Ipa.run] and
    [Fuzz.campaign] must be bit-identical at every [jobs] level. *)

open Ipa_par

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 200 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map p (fun x -> x * x) xs)

let test_filter_map_order () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 200 Fun.id in
  let f x = if x mod 3 = 0 then Some (x * 2) else None in
  Alcotest.(check (list int))
    "filter_map preserves input order" (List.filter_map f xs)
    (Pool.filter_map p f xs)

let test_uneven_work () =
  (* expensive items must not strand the rest of the batch (the claim
     counter hands items out one by one) nor scramble the result order *)
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 64 Fun.id in
  let spin x =
    let n = if x mod 16 = 0 then 20_000 else 10 in
    let acc = ref x in
    for _ = 1 to n do
      acc := (!acc * 7) mod 1009
    done;
    !acc
  in
  Alcotest.(check (list int))
    "uneven batches keep order" (List.map spin xs) (Pool.map p spin xs)

let test_sequential_fallback () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  Alcotest.(check int) "jobs=1 spawns a single-worker pool" 1 (Pool.jobs p);
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "sequential fallback maps correctly"
    (List.map succ xs) (Pool.map p succ xs)

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "jobs=0 clamps to 1" 1 (Pool.jobs p));
  Pool.with_pool ~jobs:999 (fun p ->
      Alcotest.(check int) "jobs=999 clamps to cap" Pool.cap (Pool.jobs p))

let test_worker_indices () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let seen =
    Pool.map_worker p ~f:(fun ~worker _ -> worker) (List.init 256 Fun.id)
  in
  List.iter
    (fun w ->
      if w < 0 || w >= Pool.jobs p then
        Alcotest.failf "worker index %d out of range [0,%d)" w (Pool.jobs p))
    seen

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  (match
     Pool.map p
       (fun x -> if x = 57 then raise (Boom x) else x)
       (List.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected the item exception to re-raise"
  | exception Boom 57 -> ());
  (* the pool survives a failed batch *)
  Alcotest.(check (list int))
    "pool usable after a failed batch" [ 2; 4 ]
    (Pool.map p (fun x -> x * 2) [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Intern under concurrent interning                                   *)
(* ------------------------------------------------------------------ *)

let test_intern_hammer () =
  let open Ipa_crdt in
  let n_domains = 4 and n_strings = 400 in
  let key i = Fmt.str "par-hammer-%d" i in
  (* each domain interns the full (overlapping) string set in its own
     order, racing first-sight interning of every key *)
  let doms =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Array.init n_strings (fun i ->
                let i = (i + (d * 97)) mod n_strings in
                (i, Intern.id (key i)))))
  in
  let per_domain = List.map Domain.join doms in
  (* every domain resolved every string to the same id *)
  List.iter
    (Array.iter (fun (i, id) ->
         Alcotest.(check int)
           (Fmt.str "stable id for %s" (key i))
           (Intern.id (key i)) id;
         Alcotest.(check string)
           (Fmt.str "name round-trip for %s" (key i))
           (key i) (Intern.name id)))
    per_domain;
  (* distinct strings got distinct ids *)
  let ids = List.sort_uniq compare (List.init n_strings (fun i -> Intern.id (key i))) in
  Alcotest.(check int) "no id collisions" n_strings (List.length ids)

(* ------------------------------------------------------------------ *)
(* Anactx stats folding                                                *)
(* ------------------------------------------------------------------ *)

let counters (s : Ipa_core.Anactx.stats) =
  let open Ipa_core.Anactx in
  [
    s.sat_calls; s.sat_conflicts; s.sat_decisions; s.sat_propagations;
    s.sat_learnts; s.sat_removed; s.ground_hits; s.ground_misses;
    s.verdict_hits; s.verdict_misses; s.cands_generated; s.cands_pruned;
    s.cands_checked; s.pairs_checked;
  ]

(* partitioning the catalog across per-worker contexts and folding the
   counters back must equal the per-app sums a sequential run observes *)
let test_merge_stats_partition () =
  let open Ipa_core in
  let apps =
    [
      Ipa_spec.Catalog.ticket; Ipa_spec.Catalog.tournament;
      Ipa_spec.Catalog.twitter; Ipa_spec.Catalog.tpcw;
    ]
  in
  (* sequential reference: one fresh context per app, counters summed *)
  let seq_sum =
    List.fold_left
      (fun acc mk ->
        let ctx = Anactx.create () in
        ignore (Ipa.run ~ctx (mk ()));
        List.map2 ( + ) acc (counters (Anactx.stats ctx)))
      (List.map (fun _ -> 0) (counters (Anactx.stats (Anactx.create ()))))
      apps
  in
  (* parallel shape: children forked from one parent, folded back *)
  let parent = Anactx.create () in
  List.iter
    (fun mk ->
      let child = Anactx.fresh ~like:parent in
      ignore (Ipa.run ~ctx:child (mk ()));
      Anactx.merge_stats ~into:parent child)
    apps;
  Alcotest.(check (list int))
    "merged worker counters equal the sequential sums" seq_sum
    (counters (Anactx.stats parent))

(* ------------------------------------------------------------------ *)
(* jobs-level determinism: Ipa.run                                     *)
(* ------------------------------------------------------------------ *)

(* everything an analysis run reports except wall-time statistics *)
let report_summary (r : Ipa_core.Ipa.report) =
  let open Ipa_core in
  ( r.Ipa.iterations,
    List.sort compare r.Ipa.final_rules,
    List.map
      (fun (res : Ipa.resolution) ->
        ( res.Ipa.r_op1,
          res.Ipa.r_op2,
          res.Ipa.r_witness.Detect.violated,
          match res.Ipa.r_outcome with
          | Ipa.Repaired s -> "repaired:" ^ s.Repair.s_op
          | Ipa.Compensated cs ->
              Fmt.str "compensated:%d" (List.length cs)
          | Ipa.Flagged -> "flagged" ))
      r.Ipa.resolutions,
    Ipa_spec.Render.to_string (Ipa.patched_spec r) )

let check_run_identical name (spec : Ipa_spec.Types.t) =
  let open Ipa_core in
  let at jobs = report_summary (Ipa.run ~jobs ~ctx:(Anactx.create ()) spec) in
  let base = at 1 in
  List.iter
    (fun jobs ->
      if at jobs <> base then
        Alcotest.failf "%s: Ipa.run ~jobs:%d diverged from ~jobs:1" name jobs)
    [ 2; 4 ]

let test_run_jobs_identical_catalog () =
  List.iter
    (fun (name, mk) -> check_run_identical name (mk ()))
    [
      ("ticket", Ipa_spec.Catalog.ticket);
      ("tournament", Ipa_spec.Catalog.tournament);
      ("twitter", Ipa_spec.Catalog.twitter);
      ("tpcw", Ipa_spec.Catalog.tpcw);
    ]

let test_run_jobs_identical_mutants seed =
  let rng = Ipa_sim.Rng.create seed in
  List.iter
    (fun (name, mk) ->
      for i = 1 to 3 do
        let m = Ipa_check.Specmut.mutations rng (mk ()) (1 + (i mod 2)) in
        check_run_identical (Fmt.str "%s/mutant-%d" name i) m
      done)
    [ ("ticket", Ipa_spec.Catalog.ticket); ("twitter", Ipa_spec.Catalog.twitter) ]

(* ------------------------------------------------------------------ *)
(* solver recycling                                                    *)
(* ------------------------------------------------------------------ *)

let test_solver_recycling_runs () =
  (* the analysis loop releases each obligation's solver back to the
     per-worker free list; across a whole run the recycle counters must
     grow — allocations are actually being reused, and (per the
     determinism suites around this one) without changing any verdict *)
  let open Ipa_core in
  let released0, reused0 = Ipa_solver.Sat.recycle_stats () in
  let spec = Ipa_spec.Catalog.ticket () in
  let _ = Ipa.run ~jobs:1 ~ctx:(Anactx.create ()) spec in
  let released1, reused1 = Ipa_solver.Sat.recycle_stats () in
  Alcotest.(check bool) "solvers released" true (released1 > released0);
  Alcotest.(check bool) "solvers reused" true (reused1 > reused0)

(* ------------------------------------------------------------------ *)
(* jobs-level determinism: Fuzz.campaign                               *)
(* ------------------------------------------------------------------ *)

let campaign_summary (r : Ipa_check.Fuzz.report) =
  let open Ipa_check in
  ( r.Fuzz.runs,
    r.Fuzz.failed_runs,
    r.Fuzz.failed_seeds,
    Option.map (fun c -> Trace.to_string c.Fuzz.trace) r.Fuzz.first )

let check_campaign_identical ~app ~repaired ~runs ~stop_on_failure seed =
  let open Ipa_check in
  let at jobs =
    campaign_summary
      (Fuzz.campaign ~app ~repaired ~seed ~runs ~stop_on_failure ~jobs ())
  in
  let base = at 1 in
  List.iter
    (fun jobs ->
      if at jobs <> base then
        Alcotest.failf
          "%s (repaired=%b, stop=%b): campaign ~jobs:%d diverged from ~jobs:1"
          app repaired stop_on_failure jobs)
    [ 2; 4 ]

let test_campaign_jobs_identical_repaired seed =
  List.iter
    (fun app ->
      check_campaign_identical ~app ~repaired:true ~runs:30
        ~stop_on_failure:false seed)
    [ "ticket"; "twitter" ]

let test_campaign_jobs_identical_failing seed =
  (* the unrepaired tournament fails: the failing-seed set, counts and
     the shrunk first counterexample must agree at every jobs level *)
  check_campaign_identical ~app:"tournament" ~repaired:false ~runs:30
    ~stop_on_failure:false seed;
  (* and the sequential early-stop semantics must be reconstructed *)
  check_campaign_identical ~app:"tournament" ~repaired:false ~runs:30
    ~stop_on_failure:true seed

let () =
  Alcotest.run "ipa_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "filter_map order" `Quick test_filter_map_order;
          Alcotest.test_case "uneven work" `Quick test_uneven_work;
          Alcotest.test_case "jobs=1 fallback" `Quick test_sequential_fallback;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "worker indices" `Quick test_worker_indices;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "intern",
        [ Alcotest.test_case "multi-domain hammer" `Quick test_intern_hammer ] );
      ( "anactx",
        [
          Alcotest.test_case "merge_stats partition" `Slow
            test_merge_stats_partition;
        ] );
      ( "recycling",
        [
          Alcotest.test_case "solver free list exercised" `Quick
            test_solver_recycling_runs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Ipa.run jobs-identical (catalog)" `Slow
            test_run_jobs_identical_catalog;
          Testutil.seeded_case "Ipa.run jobs-identical (mutants)" `Slow
            ~default:2026 test_run_jobs_identical_mutants;
          Testutil.seeded_case "campaign jobs-identical (repaired)" `Slow
            ~default:1 test_campaign_jobs_identical_repaired;
          Testutil.seeded_case "campaign jobs-identical (failing)" `Slow
            ~default:1 test_campaign_jobs_identical_failing;
        ] );
    ]
