(** Tests for [ipa_store]: replicas, causal delivery, highly-available
    transactions, and cross-replica convergence. *)

open Ipa_crdt
open Ipa_store

(* cluster + transaction helpers shared with the other suites *)
let three = Testutil.three
let add_to = Testutil.add_to
let remove_from = Testutil.remove_from
let elements = Testutil.elements

(* ------------------------------------------------------------------ *)
(* Basic replication                                                   *)
(* ------------------------------------------------------------------ *)

let test_commit_applies_locally () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let _ = add_to east "players" "alice" in
  Alcotest.(check (list string)) "visible locally" [ "alice" ]
    (elements east "players");
  Alcotest.(check (list string)) "not yet remote" []
    (elements (Cluster.replica c "dc-west") "players")

let test_broadcast_delivers () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let b = add_to east "players" "alice" in
  Cluster.broadcast_now c b;
  List.iter
    (fun (r : Replica.t) ->
      Alcotest.(check (list string))
        (r.Replica.id ^ " sees alice")
        [ "alice" ] (elements r "players"))
    c.Cluster.replicas;
  Alcotest.(check bool) "quiescent" true (Cluster.quiescent c)

let test_causal_buffering () =
  (* b2 depends on b1; delivering b2 first must buffer it *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let b1 = add_to east "players" "alice" in
  let b2 = add_to east "players" "bob" in
  Replica.receive west b2;
  Alcotest.(check int) "b2 buffered" 1 (Replica.pending_count west);
  Alcotest.(check (list string)) "nothing applied" [] (elements west "players");
  Replica.receive west b1;
  Alcotest.(check int) "both applied" 0 (Replica.pending_count west);
  Alcotest.(check (list string)) "in order" [ "alice"; "bob" ]
    (elements west "players")

let test_causal_cross_replica () =
  (* west's update causally follows east's; eu receiving west-first must
     wait for east's *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let eu = Cluster.replica c "dc-eu" in
  let b1 = add_to east "players" "alice" in
  Replica.receive west b1;
  let b2 = add_to west "players" "bob" (* b2 deps include east's event *) in
  Replica.receive eu b2;
  Alcotest.(check (list string)) "b2 waits for b1" [] (elements eu "players");
  Replica.receive eu b1;
  Alcotest.(check (list string)) "both arrive" [ "alice"; "bob" ]
    (elements eu "players")

let test_own_batch_ignored () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let b = add_to east "players" "alice" in
  Replica.receive east b;
  Alcotest.(check (list string)) "no duplication" [ "alice" ]
    (elements east "players")

(* ------------------------------------------------------------------ *)
(* Exactly-once delivery                                               *)
(* ------------------------------------------------------------------ *)

let dec_stock (rep : Replica.t) n = Testutil.counter_delta ~key:"stock" rep n
let stock_value (rep : Replica.t) = Testutil.counter_value ~key:"stock" rep

let test_duplicate_batch_not_reapplied () =
  (* regression: a duplicated batch whose deps are satisfied used to be
     silently re-applied, double-counting counter increments *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let b = dec_stock east 10 in
  Replica.receive west b;
  Alcotest.(check int) "applied once" 10 (stock_value west);
  Replica.receive west b;
  Replica.receive west b;
  Alcotest.(check int) "counter unchanged after duplicates" 10
    (stock_value west);
  Alcotest.(check int) "duplicates counted" 2 west.Replica.duplicates_dropped;
  Alcotest.(check int) "applied exactly once" 1 west.Replica.delivered

let test_duplicate_of_pending_dropped () =
  (* a duplicate of a batch still buffered for causal delivery must not
     enter the buffer twice *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let b1 = dec_stock east 5 in
  let b2 = dec_stock east 7 in
  Replica.receive west b2;
  Replica.receive west b2;
  Alcotest.(check int) "buffered once" 1 (Replica.pending_count west);
  Replica.receive west b1;
  Alcotest.(check int) "both applied" 0 (Replica.pending_count west);
  Alcotest.(check int) "value counted once" 12 (stock_value west)

let test_retransmission_after_apply_dropped () =
  (* an anti-entropy retransmission arriving after the original *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let b1 = dec_stock east 1 in
  let b2 = dec_stock east 1 in
  Replica.receive west b1;
  Replica.receive west b2;
  Replica.receive west b1 (* late retransmission of an old batch *);
  Alcotest.(check int) "still 2" 2 (stock_value west)

(* ------------------------------------------------------------------ *)
(* State digests                                                       *)
(* ------------------------------------------------------------------ *)

let test_digest_converged_replicas_equal () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  Cluster.broadcast_now c (add_to east "players" "alice");
  Cluster.broadcast_now c (dec_stock west 3);
  let ds =
    List.map (fun (r : Replica.t) -> Replica.state_digest r) c.Cluster.replicas
  in
  Alcotest.(check bool) "all digests equal" true
    (List.for_all (( = ) (List.hd ds)) ds)

let test_digest_ignores_read_created_objects () =
  (* a replica that merely read a key must digest like one that never
     touched it *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  Cluster.broadcast_now c (add_to east "players" "alice");
  let d_before = Replica.state_digest west in
  ignore (Replica.get west "never-written" Obj.T_awset);
  ignore (Replica.get west "never-written-2" Obj.T_pncounter);
  Alcotest.(check string) "digest unchanged" d_before
    (Replica.state_digest west)

let test_quiescent_detects_state_divergence () =
  (* equal clocks no longer imply equal state once faults exist: force a
     divergence behind the clocks' back and check quiescent sees it *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  Cluster.broadcast_now c (dec_stock east 10);
  Alcotest.(check bool) "quiescent when converged" true (Cluster.quiescent c);
  let west = Cluster.replica c "dc-west" in
  (* simulate a double-applied increment: same clock, different state *)
  (match Replica.peek west "stock" with
  | Some (Obj.O_pncounter ctr) ->
      Replica.apply_update west
        ("stock", Obj.Op_pncounter (Pncounter.prepare ctr ~rep:"dc-east" 10))
  | _ -> Alcotest.fail "stock missing");
  Alcotest.(check bool) "divergence detected despite equal clocks" false
    (Cluster.quiescent c)

(* ------------------------------------------------------------------ *)
(* Anti-entropy                                                        *)
(* ------------------------------------------------------------------ *)

let direct_send = Testutil.direct_send

let test_sync_recovers_lost_batch () =
  (* b1 is lost; b2 buffers behind the gap forever without anti-entropy *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let _b1 = dec_stock east 5 in
  let b2 = dec_stock east 7 in
  Replica.receive west b2 (* b1 never arrives *);
  Alcotest.(check int) "wedged behind the gap" 1 (Replica.pending_count west);
  let s = Sync.create ~base_backoff_ms:100.0 c in
  (* first round only starts the grace period for the missing batches *)
  ignore (Sync.round s ~now:0.0 ~send:direct_send);
  let n = Sync.round s ~now:200.0 ~send:direct_send in
  Alcotest.(check bool) "retransmitted something" true (n > 0);
  Alcotest.(check int) "gap closed" 0 (Replica.pending_count west);
  Alcotest.(check int) "both applied exactly once" 12 (stock_value west);
  Alcotest.(check bool) "cluster converges" true
    (let eu = Cluster.replica c "dc-eu" in
     stock_value eu = 12)

let test_sync_backoff_paces_retransmissions () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let _b = dec_stock east 1 in
  (* a sink that drops everything: the batch stays missing *)
  let drop ~src:_ ~dst:_ _ = () in
  let s = Sync.create ~base_backoff_ms:100.0 ~max_backoff_ms:400.0 c in
  ignore (Sync.round s ~now:0.0 ~send:drop) (* grace period *);
  let r1 = Sync.round s ~now:150.0 ~send:drop in
  Alcotest.(check bool) "due after grace" true (r1 > 0);
  let r2 = Sync.round s ~now:200.0 ~send:drop in
  Alcotest.(check int) "within backoff: no resend" 0 r2;
  let r3 = Sync.round s ~now:300.0 ~send:drop in
  Alcotest.(check bool) "due again after backoff" true (r3 > 0);
  (* backoff doubled to 200, then 400 (cap); it never exceeds the cap *)
  let r4 = Sync.round s ~now:450.0 ~send:drop in
  Alcotest.(check int) "doubled backoff not yet elapsed" 0 r4;
  let r5 = Sync.round s ~now:1_000.0 ~send:drop in
  Alcotest.(check bool) "capped backoff still retries" true (r5 > 0)

let test_sync_backoff_cap_reached () =
  (* base 100 / cap 150: retransmission intervals must go 100, 150,
     150, ... — the doubled backoff is clamped at the cap and never
     grows past it *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let _b = dec_stock east 1 in
  let drop ~src:_ ~dst:_ _ = () in
  let s = Sync.create ~base_backoff_ms:100.0 ~max_backoff_ms:150.0 c in
  ignore (Sync.round s ~now:0.0 ~send:drop) (* grace period *);
  Alcotest.(check bool) "first retransmit after grace" true
    (Sync.round s ~now:100.0 ~send:drop > 0);
  Alcotest.(check int) "silent inside the base interval" 0
    (Sync.round s ~now:199.0 ~send:drop);
  Alcotest.(check bool) "second retransmit at +100" true
    (Sync.round s ~now:200.0 ~send:drop > 0);
  (* the doubled backoff (200) was clamped to the 150 cap *)
  Alcotest.(check int) "capped: silent at +149" 0
    (Sync.round s ~now:349.0 ~send:drop);
  Alcotest.(check bool) "due at the cap" true
    (Sync.round s ~now:350.0 ~send:drop > 0);
  (* and the interval stays at the cap from here on *)
  Alcotest.(check int) "still silent inside the capped interval" 0
    (Sync.round s ~now:499.0 ~send:drop);
  Alcotest.(check bool) "due again one cap later" true
    (Sync.round s ~now:500.0 ~send:drop > 0)

let test_sync_gap_closed_mid_backoff () =
  (* the batch was missing when the grace period started, but arrives
     through the normal path before the backoff elapses: the next round
     must retransmit nothing *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let eu = Cluster.replica c "dc-eu" in
  let b = dec_stock east 1 in
  let drop ~src:_ ~dst:_ _ = () in
  let s = Sync.create ~base_backoff_ms:100.0 c in
  ignore (Sync.round s ~now:0.0 ~send:drop) (* grace period opens *);
  Replica.receive west b;
  Replica.receive eu b (* gap closes mid-backoff *);
  Alcotest.(check int) "nothing to resend once the gap closed" 0
    (Sync.round s ~now:200.0 ~send:drop);
  Alcotest.(check int) "batch applied exactly once" 1 (stock_value west);
  Alcotest.(check bool) "cluster quiescent" true (Cluster.quiescent c)

let test_sync_noop_when_converged () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  Cluster.broadcast_now c (dec_stock east 5);
  let s = Sync.create c in
  ignore (Sync.round s ~now:0.0 ~send:direct_send);
  let n = Sync.round s ~now:10_000.0 ~send:direct_send in
  Alcotest.(check int) "nothing to retransmit" 0 n

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let test_txn_read_your_writes () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let tx = Txn.begin_ east in
  let s = Obj.as_awset (Txn.get tx "players" Obj.T_awset) in
  Txn.update tx "players"
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "alice"));
  (* the transaction sees its own buffered write *)
  let s' = Obj.as_awset (Txn.get tx "players" Obj.T_awset) in
  Alcotest.(check bool) "read your writes" true (Awset.mem "alice" s');
  (* but the replica does not, until commit *)
  Alcotest.(check (list string)) "not visible outside" []
    (elements east "players");
  ignore (Txn.commit tx);
  Alcotest.(check (list string)) "visible after commit" [ "alice" ]
    (elements east "players")

let test_txn_atomic_batch () =
  (* a two-update transaction is applied atomically at remote replicas *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let tx = Txn.begin_ east in
  let s = Obj.as_awset (Txn.get tx "players" Obj.T_awset) in
  Txn.update tx "players"
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "alice"));
  let t = Obj.as_awset (Txn.get tx "tournaments" Obj.T_awset) in
  Txn.update tx "tournaments"
    (Obj.Op_awset (Awset.prepare_add t ~dot:(Txn.fresh_dot tx) "cup"));
  let b = Option.get (Txn.commit tx) in
  Alcotest.(check int) "two updates in batch" 2 (List.length b.Replica.b_updates);
  Replica.receive west b;
  Alcotest.(check (list string)) "players" [ "alice" ] (elements west "players");
  Alcotest.(check (list string)) "tournaments" [ "cup" ]
    (elements west "tournaments")

let test_txn_readonly_no_batch () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let tx = Txn.begin_ east in
  let _ = Txn.get tx "players" Obj.T_awset in
  Alcotest.(check bool) "read-only commits to nothing" true
    (Txn.commit tx = None)

let test_txn_counts () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let tx = Txn.begin_ east in
  let s = Obj.as_awset (Txn.get tx "k1" Obj.T_awset) in
  Txn.update tx "k1"
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "a"));
  Txn.update tx "k1"
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "b"));
  Txn.update tx "k2"
    (Obj.Op_awset (Awset.prepare_add s ~dot:(Txn.fresh_dot tx) "c"));
  Alcotest.(check int) "update count" 3 (Txn.update_count tx);
  Alcotest.(check int) "distinct keys" 2 (Txn.keys_written tx);
  ignore (Txn.commit tx)

let test_txn_double_commit_rejected () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let tx = Txn.begin_ east in
  ignore (Txn.commit tx);
  match Txn.commit tx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double commit must be rejected"

(* ------------------------------------------------------------------ *)
(* Conflict resolution through the store                               *)
(* ------------------------------------------------------------------ *)

let test_concurrent_add_remove_add_wins () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  (* both start from a synced state containing alice *)
  let b0 = add_to east "players" "alice" in
  Cluster.broadcast_now c b0;
  (* concurrently: east removes alice, west re-adds alice *)
  let b_rm = remove_from east "players" "alice" in
  let b_add = add_to west "players" "alice" in
  Cluster.broadcast_now c b_rm;
  Cluster.broadcast_now c b_add;
  List.iter
    (fun (r : Replica.t) ->
      Alcotest.(check (list string))
        (r.Replica.id ^ " add wins")
        [ "alice" ] (elements r "players"))
    c.Cluster.replicas

let test_concurrent_counter () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let dec (rep : Replica.t) n =
    let tx = Txn.begin_ rep in
    let ctr = Obj.as_pncounter (Txn.get tx "stock" Obj.T_pncounter) in
    Txn.update tx "stock"
      (Obj.Op_pncounter (Pncounter.prepare ctr ~rep:rep.Replica.id n));
    Option.get (Txn.commit tx)
  in
  let b1 = dec east 10 in
  Cluster.broadcast_now c b1;
  let b2 = dec east (-3) and b3 = dec west (-4) in
  Cluster.broadcast_now c b2;
  Cluster.broadcast_now c b3;
  List.iter
    (fun (r : Replica.t) ->
      let v = Pncounter.value (Obj.as_pncounter (Option.get (Replica.peek r "stock"))) in
      Alcotest.(check int) (r.Replica.id ^ " counter") 3 v)
    c.Cluster.replicas

(* ------------------------------------------------------------------ *)
(* Causal stability and garbage collection                             *)
(* ------------------------------------------------------------------ *)

let test_stability_cut_advances () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  (* before any cross-replica traffic, nothing is stable *)
  Alcotest.(check int) "initially nothing stable" 0
    (Vclock.total (Replica.stable_vv east));
  let b = add_to east "players" "alice" in
  Cluster.broadcast_now c b;
  (* east has not heard back: its event is not yet known-stable *)
  Alcotest.(check int) "not stable before acks" 0
    (Vclock.total (Replica.stable_vv east));
  (* the other replicas send batches whose clocks include east's event *)
  let b2 = add_to (Cluster.replica c "dc-west") "players" "bob" in
  let b3 = add_to (Cluster.replica c "dc-eu") "players" "carol" in
  Cluster.broadcast_now c b2;
  Cluster.broadcast_now c b3;
  let stable = Replica.stable_vv east in
  Alcotest.(check int) "east's event now stable" 1 (Vclock.get stable "dc-east")

let test_gc_reclaims_rwset_barriers () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let eu = Cluster.replica c "dc-eu" in
  let rw_op (rep : Replica.t) f =
    let tx = Txn.begin_ rep in
    let s = Obj.as_rwset (Txn.get tx "active" Obj.T_rwset) in
    f tx s;
    Option.get (Txn.commit tx)
  in
  let add rep e =
    rw_op rep (fun tx s ->
        Txn.update tx "active"
          (Obj.Op_rwset
             (Rwset.prepare_add s ~dot:(Txn.fresh_dot tx)
                ~vv:(Txn.current_vv tx) e)))
  in
  let remove rep e =
    rw_op rep (fun tx s ->
        Txn.update tx "active"
          (Obj.Op_rwset (Rwset.prepare_remove s ~vv:(Txn.fresh_vv tx) e)))
  in
  Cluster.broadcast_now c (add east "t1");
  Cluster.broadcast_now c (remove east "t1");
  (* traffic from everyone so the removes become stable at east *)
  Cluster.broadcast_now c (add west "t2");
  Cluster.broadcast_now c (add eu "t3");
  Cluster.broadcast_now c (add west "t4");
  Cluster.broadcast_now c (add eu "t5");
  let before =
    Rwset.metadata_size (Obj.as_rwset (Option.get (Replica.peek east "active")))
  in
  let reclaimed = Replica.gc east in
  let after =
    Rwset.metadata_size (Obj.as_rwset (Option.get (Replica.peek east "active")))
  in
  Alcotest.(check bool) "metadata reclaimed" true (reclaimed > 0);
  Alcotest.(check int) "size accounting" (before - reclaimed) after;
  (* semantics unchanged *)
  let s = Obj.as_rwset (Option.get (Replica.peek east "active")) in
  Alcotest.(check bool) "t1 still removed" false (Rwset.mem "t1" s);
  Alcotest.(check bool) "t2 still present" true (Rwset.mem "t2" s)

let test_gc_preserves_unstable_state () =
  (* a remove that is NOT yet stable must survive GC so a concurrent
     in-flight add still loses to it *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let tx = Txn.begin_ east in
  let s = Obj.as_rwset (Txn.get tx "k" Obj.T_rwset) in
  Txn.update tx "k"
    (Obj.Op_rwset (Rwset.prepare_remove s ~vv:(Txn.fresh_vv tx) "x"));
  let b_rm = Option.get (Txn.commit tx) in
  (* concurrent add at west (has not seen the remove) *)
  let tx2 = Txn.begin_ west in
  let s2 = Obj.as_rwset (Txn.get tx2 "k" Obj.T_rwset) in
  Txn.update tx2 "k"
    (Obj.Op_rwset
       (Rwset.prepare_add s2 ~dot:(Txn.fresh_dot tx2) ~vv:(Txn.current_vv tx2)
          "x"));
  let b_add = Option.get (Txn.commit tx2) in
  (* east GCs before the add arrives: the unstable barrier must remain *)
  let _ = Replica.gc east in
  Replica.receive east b_add;
  Replica.receive west b_rm;
  let s_east = Obj.as_rwset (Option.get (Replica.peek east "k")) in
  Alcotest.(check bool) "remove still wins after gc" false
    (Rwset.mem "x" s_east)

let test_gc_awset_payload () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let eu = Cluster.replica c "dc-eu" in
  (* add with payload, then remove; make both stable via peer traffic *)
  let tx = Txn.begin_ east in
  let s = Obj.as_awset (Txn.get tx "players" Obj.T_awset) in
  Txn.update tx "players"
    (Obj.Op_awset
       (Awset.prepare_add ~payload:"data" s ~dot:(Txn.fresh_dot tx) "alice"));
  Cluster.broadcast_now c (Option.get (Txn.commit tx));
  Cluster.broadcast_now c (remove_from east "players" "alice");
  Cluster.broadcast_now c (add_to west "players" "bob");
  Cluster.broadcast_now c (add_to eu "players" "carol");
  let before =
    Awset.metadata_size (Obj.as_awset (Option.get (Replica.peek east "players")))
  in
  let _ = Replica.gc east in
  let after =
    Awset.metadata_size (Obj.as_awset (Option.get (Replica.peek east "players")))
  in
  Alcotest.(check bool) "tombstone entry reclaimed" true (after < before);
  let s = Obj.as_awset (Option.get (Replica.peek east "players")) in
  Alcotest.(check bool) "members unchanged" true
    (Awset.elements s = [ "bob"; "carol" ])

(* ------------------------------------------------------------------ *)
(* Remote-first creation of compensation objects                       *)
(* ------------------------------------------------------------------ *)

let test_remote_first_compset_bounds () =
  (* regression: a compset created by a remote effect (before any local
     access) used to get the sentinel bound max_int, silently disabling
     the size invariant until the first local access *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let add e =
    let tx = Txn.begin_ east in
    let s =
      Obj.as_compset (Txn.get tx "vip" (Obj.T_compset { max_size = 1 }))
    in
    Txn.update tx "vip"
      (Obj.Op_compset (Compset.prepare_add s ~dot:(Txn.fresh_dot tx) e));
    Option.get (Txn.commit tx)
  in
  Cluster.broadcast_now c (add "a");
  Cluster.broadcast_now c (add "b");
  (* west never accessed the key: the object must carry the real bound *)
  match Replica.peek west "vip" with
  | Some (Obj.O_compset cs) ->
      Alcotest.(check bool) "violation visible at west" true
        (Compset.violated cs);
      let visible, comp = Compset.read cs in
      Alcotest.(check int) "bound enforced on read" 1 (List.length visible);
      Alcotest.(check bool) "compensation generated" true (comp <> [])
  | _ -> Alcotest.fail "compset missing at west"

let test_remote_first_compcounter_bounds () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let tx = Txn.begin_ east in
  let ctr =
    Obj.as_compcounter (Txn.get tx "bal" (Obj.T_compcounter { min_value = 5 }))
  in
  Txn.update tx "bal"
    (Obj.Op_compcounter
       (Compcounter.prepare_delta ctr ~rep:east.Replica.id 3));
  Cluster.broadcast_now c (Option.get (Txn.commit tx));
  match Replica.peek west "bal" with
  | Some (Obj.O_compcounter cc) ->
      (* with the sentinel bound 0 the value 3 would look fine *)
      Alcotest.(check bool) "real bound carried (3 < 5 violates)" true
        (Compcounter.violated cc);
      let v, ops, repaired = Compcounter.read cc ~rep:west.Replica.id in
      Alcotest.(check int) "read repairs to the real bound" 5 v;
      Alcotest.(check int) "two units repaired" 2 repaired;
      Alcotest.(check bool) "compensation ops produced" true (ops <> [])
  | _ -> Alcotest.fail "compcounter missing at west"

(* ------------------------------------------------------------------ *)
(* Stability-based log truncation                                      *)
(* ------------------------------------------------------------------ *)

let test_truncation_retains_unstable_then_drops () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let eu = Cluster.replica c "dc-eu" in
  (* b1 is lost to west; b2 buffers behind the gap there *)
  let b1 = dec_stock east 5 in
  Replica.receive eu b1;
  let b2 = dec_stock east 7 in
  Replica.receive west b2;
  Replica.receive eu b2;
  (* peer traffic so east learns its peers' clocks *)
  Cluster.broadcast_now c (dec_stock west 1);
  Cluster.broadcast_now c (dec_stock eu 1);
  ignore (Replica.gc east);
  (* west has not applied b1: the stability cut pins east's entries at
     zero, so nothing of east's log may be truncated *)
  Alcotest.(check int) "gap batches retained" 2
    (List.length (Replica.log_after east ~origin:"dc-east" ~known:0));
  Alcotest.(check int) "east's unstable prefix pinned" 1
    (Hashtbl.find east.Replica.log "dc-east").Replica.min_seq;
  (* anti-entropy closes the gap *)
  let s = Sync.create ~base_backoff_ms:100.0 c in
  ignore (Sync.round s ~now:0.0 ~send:direct_send);
  ignore (Sync.round s ~now:200.0 ~send:direct_send);
  Alcotest.(check bool) "converged" true (Cluster.quiescent c);
  Alcotest.(check int) "all applied" 14 (stock_value west);
  (* fresh commits from both peers prove they now know east's events *)
  Cluster.broadcast_now c (dec_stock west 1);
  Cluster.broadcast_now c (dec_stock eu 1);
  ignore (Replica.gc east);
  Alcotest.(check bool) "stable prefix truncated" true
    (east.Replica.log_truncated > 0);
  (* conservation: every batch east ever logged (6 commits cluster-wide)
     is either still retained or was truncated as stable *)
  Alcotest.(check int) "retained + truncated = all batches" 6
    (east.Replica.log_size + east.Replica.log_truncated);
  Alcotest.(check bool) "high-water mark bounds retained log" true
    (east.Replica.log_size <= east.Replica.log_hwm);
  (* truncation must not disturb a converged cluster *)
  Alcotest.(check bool) "still quiescent" true (Cluster.quiescent c);
  Alcotest.(check int) "sync has nothing to resend" 0
    (Sync.round s ~now:10_000.0 ~send:direct_send)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_restore_roundtrip () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  Cluster.broadcast_now c (add_to east "players" "alice");
  Cluster.broadcast_now c (dec_stock west 3);
  let digests0 =
    List.map (fun (r : Replica.t) -> Replica.state_digest r) c.Cluster.replicas
  in
  let snap = Cluster.snapshot c in
  (* diverge well past the snapshot point *)
  Cluster.broadcast_now c (add_to east "players" "bob");
  Cluster.broadcast_now c (remove_from west "players" "alice");
  Cluster.broadcast_now c (dec_stock east 7);
  Alcotest.(check bool) "state moved on" true
    (Replica.state_digest east <> List.hd digests0);
  Cluster.restore c snap;
  Alcotest.(check (list string)) "restored digests identical" digests0
    (List.map
       (fun (r : Replica.t) -> Replica.state_digest r)
       c.Cluster.replicas);
  Alcotest.(check (list string)) "restored membership" [ "alice" ]
    (elements east "players");
  Alcotest.(check int) "restored counter" 3 (stock_value west);
  Alcotest.(check bool) "restored cluster quiescent" true (Cluster.quiescent c)

let test_snapshot_restore_replica_still_works () =
  (* a restored replica must keep functioning: fresh commits replicate
     and the incremental digest stays coherent with the reference *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  Cluster.broadcast_now c (add_to east "players" "alice");
  let snap = Cluster.snapshot c in
  Cluster.broadcast_now c (add_to east "players" "bob");
  Cluster.restore c snap;
  Cluster.broadcast_now c (add_to east "players" "carol");
  List.iter
    (fun (r : Replica.t) ->
      Alcotest.(check (list string))
        (r.Replica.id ^ " sees post-restore commit")
        [ "alice"; "carol" ] (elements r "players");
      Alcotest.(check string)
        (r.Replica.id ^ " incremental digest coherent")
        (Replica.state_digest_scratch r)
        (Replica.state_digest r))
    c.Cluster.replicas;
  Alcotest.(check bool) "quiescent after restore + commit" true
    (Cluster.quiescent c)

(* ------------------------------------------------------------------ *)
(* Sharding and the digest tree                                        *)
(* ------------------------------------------------------------------ *)

(** One transaction bumping each of [keys] by 1. *)
let inc_keys (rep : Replica.t) (keys : string list) : Replica.batch =
  let tx = Txn.begin_ rep in
  List.iter
    (fun key ->
      let ctr = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
      Txn.update tx key
        (Obj.Op_pncounter (Pncounter.prepare ctr ~rep:rep.Replica.id 1)))
    keys;
  Option.get (Txn.commit tx)

let test_shard_count_invariance () =
  (* the same update stream must digest identically whatever the shard
     count — partitioning is internal layout, never observable state *)
  let run shards =
    let c = Cluster.create ~shards Testutil.regions in
    let reps = Array.of_list c.Cluster.replicas in
    for i = 0 to 39 do
      let rep = reps.(i mod 3) in
      let b =
        if i mod 2 = 0 then
          add_to rep
            (Printf.sprintf "set-%d" (i mod 7))
            (Printf.sprintf "e%d" i)
        else inc_keys rep [ Printf.sprintf "ctr-%d" (i mod 25) ]
      in
      Cluster.broadcast_now c b
    done;
    Alcotest.(check bool)
      (Printf.sprintf "quiescent at %d shards" shards)
      true (Cluster.quiescent c);
    List.iter
      (fun (r : Replica.t) ->
        Alcotest.(check string)
          (Printf.sprintf "%s scratch coherent at %d shards" r.Replica.id
             shards)
          (Replica.state_digest_scratch r)
          (Replica.state_digest r))
      c.Cluster.replicas;
    ( List.map
        (fun (r : Replica.t) -> Replica.state_digest r)
        c.Cluster.replicas,
      List.map (fun (r : Replica.t) -> Replica.quick_digest r) c.Cluster.replicas
    )
  in
  let d1 = run 1 and d4 = run 4 and d16 = run 16 in
  Alcotest.(check bool) "1 and 4 shards digest identically" true (d1 = d4);
  Alcotest.(check bool) "4 and 16 shards digest identically" true (d4 = d16)

let test_digest_tree_descent () =
  let c = Cluster.create ~shards:8 Testutil.regions in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  let n_keys = 30 in
  for i = 0 to n_keys - 1 do
    Cluster.broadcast_now c (inc_keys east [ Printf.sprintf "key-%02d" i ])
  done;
  let shards = Replica.shard_count east in
  let d0 = Sync.divergent_keys ~a:east ~b:west in
  Alcotest.(check (list string)) "converged: no divergent keys" []
    d0.Sync.divergent;
  Alcotest.(check bool) "converged descent stops at the shard level" true
    (d0.Sync.nodes_visited <= shards + 1);
  (* commit at east only: the descent must localize exactly those keys
     without hashing the whole keyspace on both sides *)
  let touched = [ "key-03"; "key-07"; "key-11"; "key-19"; "key-23" ] in
  let b = inc_keys east touched in
  let d1 = Sync.divergent_keys ~a:east ~b:west in
  Alcotest.(check (list string)) "exactly the touched keys localized" touched
    (List.sort String.compare d1.Sync.divergent);
  Alcotest.(check bool)
    (Printf.sprintf "descent cheaper than a full scan (%d nodes)"
       d1.Sync.nodes_visited)
    true
    (d1.Sync.nodes_visited < shards + 1 + (2 * n_keys));
  Cluster.broadcast_now c b;
  let d2 = Sync.divergent_keys ~a:east ~b:west in
  Alcotest.(check (list string)) "healed: no divergent keys" []
    d2.Sync.divergent

let test_snapshot_restore_across_shards () =
  List.iter
    (fun shards ->
      let c = Cluster.create ~shards Testutil.regions in
      let east = Cluster.replica c "dc-east" in
      let west = Cluster.replica c "dc-west" in
      for i = 0 to 19 do
        Cluster.broadcast_now c (inc_keys east [ Printf.sprintf "k-%d" i ])
      done;
      Cluster.broadcast_now c (add_to west "roster" "alice");
      let digests0 =
        List.map
          (fun (r : Replica.t) -> Replica.state_digest r)
          c.Cluster.replicas
      in
      let snap = Cluster.snapshot c in
      Cluster.broadcast_now c (inc_keys west [ "k-3"; "k-999" ]);
      Cluster.broadcast_now c (remove_from west "roster" "alice");
      Cluster.restore c snap;
      Alcotest.(check (list string))
        (Printf.sprintf "digests restored at %d shards" shards)
        digests0
        (List.map
           (fun (r : Replica.t) -> Replica.state_digest r)
           c.Cluster.replicas);
      (* the restored cluster keeps working, digests stay coherent *)
      Cluster.broadcast_now c (inc_keys east [ "k-5" ]);
      List.iter
        (fun (r : Replica.t) ->
          Alcotest.(check string)
            (Printf.sprintf "%s coherent post-restore (%d shards)"
               r.Replica.id shards)
            (Replica.state_digest_scratch r)
            (Replica.state_digest r))
        c.Cluster.replicas;
      Alcotest.(check bool)
        (Printf.sprintf "quiescent after restore at %d shards" shards)
        true (Cluster.quiescent c))
    [ 1; 4; 16 ]

let test_drain_linear_reversed_burst () =
  (* worst case for the pending drain: N batches delivered newest-first,
     so nothing applies until the oldest arrives and the whole buffer
     then drains in one cascade.  The drain must examine O(N) head
     candidates — a full re-scan of the buffer per arrival would be
     ~N²/2 examinations *)
  let n = 60 in
  let c = Cluster.create [ ("dr-a", "us"); ("dr-b", "eu") ] in
  let a = Cluster.replica c "dr-a" in
  let b = Cluster.replica c "dr-b" in
  let batches = List.init n (fun _ -> Testutil.counter_delta ~key:"x" a 1) in
  let scans0 = b.Replica.drain_scans in
  List.iter (Replica.receive b) (List.rev batches);
  Alcotest.(check int) "all applied" 0 (Replica.pending_count b);
  Alcotest.(check int) "value counted once each" n
    (Testutil.counter_value ~key:"x" b);
  let scans = b.Replica.drain_scans - scans0 in
  Alcotest.(check bool)
    (Printf.sprintf "drain scans linear (%d <= %d)" scans ((4 * n) + 16))
    true
    (scans <= (4 * n) + 16)

let test_commit_alloc_independent_of_keyspace () =
  (* regression for the million-key collapse: a commit's allocation must
     not scale with the number of interned keys.  When vector clocks
     indexed the shared intern namespace, a replica id first seen after
     a large population forced every commit to copy a keyspace-width
     clock (>400 KB here) *)
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  Cluster.broadcast_now c (inc_keys east [ "alloc-probe" ]) (* warm up *);
  for i = 0 to 49_999 do
    ignore (Intern.id (Printf.sprintf "alloc-flood-%d" i))
  done;
  let bytes0 = Gc.allocated_bytes () in
  let b = inc_keys east [ "alloc-probe" ] in
  let allocated = Gc.allocated_bytes () -. bytes0 in
  Cluster.broadcast_now c b;
  Alcotest.(check bool)
    (Printf.sprintf "commit allocation bounded (%.0f bytes)" allocated)
    true
    (allocated < 100_000.0)

(* ------------------------------------------------------------------ *)
(* Durability: WAL crash recovery and the corruption matrix            *)
(* ------------------------------------------------------------------ *)

let wal_ctr = ref 0

(* a directory no previous run left files in (Wal.create mkdirs it) *)
let fresh_wal_dir () =
  let rec go () =
    incr wal_ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ipa-test-wal-%d" !wal_ctr)
    in
    if Sys.file_exists d then go () else d
  in
  go ()

(* a three-replica cluster with a WAL attached to every replica;
   files are removed however the test exits *)
let with_walled_cluster ?group_commit (f : Cluster.t -> Wal.t array -> unit) :
    unit =
  let dir = fresh_wal_dir () in
  let c = three () in
  let ws =
    Array.of_list
      (List.map
         (fun (r : Replica.t) ->
           let w = Wal.create ?group_commit ~dir ~id:r.Replica.id () in
           Wal.attach w r;
           w)
         c.Cluster.replicas)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Wal.remove_files ws;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f c ws)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* frame start offsets of a well-formed WAL file *)
let frame_offsets (s : string) : int list =
  let rec go pos acc =
    if pos + 8 > String.length s then List.rev acc
    else
      let len = Int32.to_int (String.get_int32_le s pos) in
      go (pos + 8 + len) (pos :: acc)
  in
  go 0 []

(* the corruption-matrix workload: two commits at east, two applies
   from west — four frames in east's WAL, every one flushed *)
let matrix_setup (c : Cluster.t) : Replica.t =
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  Cluster.broadcast_now c (add_to east "players" "alice");
  Cluster.broadcast_now c (add_to east "players" "bob");
  Cluster.broadcast_now c (dec_stock west 5);
  Cluster.broadcast_now c (dec_stock west 7);
  east

let heal (c : Cluster.t) : unit =
  let s = Sync.create ~base_backoff_ms:1.0 c in
  let now = ref 0.0 in
  let rounds = ref 0 in
  while (not (Cluster.quiescent c)) && !rounds < 50 do
    ignore (Sync.round s ~now:!now ~send:Testutil.direct_send);
    now := !now +. 1000.0;
    incr rounds
  done;
  Alcotest.(check bool) "anti-entropy re-converged the cluster" true
    (Cluster.quiescent c)

let test_wal_recover_roundtrip () =
  with_walled_cluster ~group_commit:1 (fun c ws ->
      let east = matrix_setup c in
      let d = Replica.state_digest east in
      Wal.crash ws.(0);
      let r = Wal.recover ws.(0) east in
      Alcotest.(check bool) "no snapshot yet" false r.Wal.rec_snapshot;
      Alcotest.(check int) "all four records replayed" 4 r.Wal.rec_replayed;
      Alcotest.(check int) "nothing dropped" 0 r.Wal.rec_dropped_bytes;
      Alcotest.(check string) "digest bit-identical" d
        (Replica.state_digest east);
      Alcotest.(check int) "counter exact" 12 (stock_value east);
      Alcotest.(check bool) "cluster still quiescent" true
        (Cluster.quiescent c))

(* corrupt east's WAL file with [mutate], recover, check the recovery
   record, then heal and demand full convergence back to [d_full] *)
let corruption_case ~(mutate : string -> string)
    ~(check : Wal.recovery -> int -> unit) () =
  with_walled_cluster ~group_commit:1 (fun c ws ->
      let east = matrix_setup c in
      let d_full = Replica.state_digest east in
      Wal.crash ws.(0);
      let path = Wal.wal_path ~dir:ws.(0).Wal.dir ~id:"dc-east" in
      let orig = read_file path in
      write_file path (mutate orig);
      let r = Wal.recover ws.(0) east in
      check r (String.length orig);
      (* the invalid tail was truncated away on disk *)
      Alcotest.(check int) "file rewritten to the valid prefix"
        r.Wal.rec_valid_bytes
        (String.length (read_file path));
      heal c;
      Alcotest.(check string) "healed back to the full digest" d_full
        (Replica.state_digest east);
      Alcotest.(check int) "counter healed exactly" 12 (stock_value east))

let test_wal_truncated_tail =
  corruption_case
    ~mutate:(fun s -> String.sub s 0 (String.length s - 5))
    ~check:(fun r _ ->
      Alcotest.(check int) "three records survive" 3 r.Wal.rec_replayed;
      Alcotest.(check bool) "torn tail dropped" true
        (r.Wal.rec_dropped_bytes > 0))

let test_wal_flipped_checksum_byte =
  corruption_case
    ~mutate:(fun s ->
      (* flip one payload byte of the last frame: the CRC must refuse
         the whole record, not just garble its batch *)
      let last = List.nth (frame_offsets s) 3 in
      let b = Bytes.of_string s in
      Bytes.set b (last + 8) (Char.chr (Char.code (Bytes.get b (last + 8)) lxor 0xFF));
      Bytes.to_string b)
    ~check:(fun r total ->
      Alcotest.(check int) "three records survive" 3 r.Wal.rec_replayed;
      Alcotest.(check bool) "checksum-failed record dropped" true
        (r.Wal.rec_dropped_bytes > 0 && r.Wal.rec_valid_bytes < total))

let test_wal_duplicated_record =
  corruption_case
    ~mutate:(fun s ->
      let last = List.nth (frame_offsets s) 3 in
      s ^ String.sub s last (String.length s - last))
    ~check:(fun r _ ->
      (* the duplicate parses fine; replay must skip it by cursor, not
         double-apply the counter increment (checked via d_full) *)
      Alcotest.(check int) "four records replayed" 4 r.Wal.rec_replayed;
      Alcotest.(check int) "duplicate skipped" 1 r.Wal.rec_skipped;
      Alcotest.(check int) "nothing dropped" 0 r.Wal.rec_dropped_bytes)

let test_wal_torn_final_record =
  corruption_case
    ~mutate:(fun s ->
      let last = List.nth (frame_offsets s) 3 in
      s ^ String.sub s last 10)
    ~check:(fun r _ ->
      Alcotest.(check int) "all whole records replayed" 4 r.Wal.rec_replayed;
      Alcotest.(check int) "torn half-frame dropped" 10
        r.Wal.rec_dropped_bytes)

let test_wal_checkpoint_snapshot_replay () =
  with_walled_cluster ~group_commit:1 (fun c ws ->
      let east = Cluster.replica c "dc-east" in
      let west = Cluster.replica c "dc-west" in
      Cluster.broadcast_now c (add_to east "players" "alice");
      Cluster.broadcast_now c (add_to east "players" "bob");
      Wal.checkpoint ws.(0) east;
      Cluster.broadcast_now c (dec_stock west 5);
      Cluster.broadcast_now c (dec_stock west 7);
      let d_full = Replica.state_digest east in
      Wal.crash ws.(0);
      let r = Wal.recover ws.(0) east in
      Alcotest.(check bool) "snapshot restored" true r.Wal.rec_snapshot;
      Alcotest.(check int) "only the post-checkpoint records replayed" 2
        r.Wal.rec_replayed;
      Alcotest.(check string) "digest bit-identical" d_full
        (Replica.state_digest east);
      Alcotest.(check int) "counter exact" 12 (stock_value east))

let test_wal_group_commit_loses_unflushed_applies () =
  (* applies are group-committed: an unflushed remote apply may be lost
     on crash (regressing the cursor consistently with the state) and
     anti-entropy must re-deliver it; the replica's OWN commit is
     flushed synchronously and survives *)
  with_walled_cluster ~group_commit:100 (fun c ws ->
      let east = Cluster.replica c "dc-east" in
      let west = Cluster.replica c "dc-west" in
      Cluster.broadcast_now c (add_to east "players" "alice");
      Cluster.broadcast_now c (dec_stock west 5);
      Alcotest.(check int) "apply visible before the crash" 5
        (stock_value east);
      Wal.crash ws.(0);
      let r = Wal.recover ws.(0) east in
      Alcotest.(check int) "own commit durable" 1 r.Wal.rec_replayed;
      Alcotest.(check int) "unflushed apply lost" 0 (stock_value east);
      Alcotest.(check (list string)) "committed add survived" [ "alice" ]
        (elements east "players");
      heal c;
      Alcotest.(check int) "re-delivered by anti-entropy" 5
        (stock_value east))

(* ------------------------------------------------------------------ *)
(* Delta repair: convergence and wire-cost vs full state               *)
(* ------------------------------------------------------------------ *)

let test_delta_repair_fewer_bytes () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  (* a large converged set, then a small tail of updates eu misses *)
  for i = 0 to 199 do
    Cluster.broadcast_now c (add_to east "big" (Printf.sprintf "e%03d" i))
  done;
  for i = 200 to 209 do
    let b = add_to east "big" (Printf.sprintf "e%03d" i) in
    Replica.receive west b
  done;
  Cluster.broadcast_now c (dec_stock east 3);
  Replica.receive west (dec_stock east 4);
  let d_ref = Replica.state_digest east in
  Alcotest.(check string) "west converged by op application" d_ref
    (Replica.state_digest west);
  let snap = Cluster.snapshot c in
  let run_mode mode =
    Cluster.restore c snap;
    let eu = Cluster.replica c "dc-eu" in
    let s = Sync.create ~base_backoff_ms:1.0 c in
    let st = Sync.repair s ~mode ~src:east ~dst:eu in
    Alcotest.(check string) "repair converged eu" d_ref
      (Replica.state_digest eu);
    Alcotest.(check bool) "something was shipped" true (st.Sync.r_accepted > 0);
    st.Sync.r_bytes
  in
  let bytes_delta = run_mode Sync.Deltas in
  let bytes_state = run_mode Sync.Full_state in
  let bytes_batches = run_mode Sync.Batches in
  Alcotest.(check bool)
    (Printf.sprintf "deltas at least 2x cheaper than full state (%d vs %d)"
       bytes_delta bytes_state)
    true
    (bytes_delta * 2 <= bytes_state);
  Alcotest.(check bool)
    (Printf.sprintf "deltas no dearer than raw batches (%d vs %d)" bytes_delta
       bytes_batches)
    true
    (bytes_delta <= bytes_batches)

(* ------------------------------------------------------------------ *)
(* Convergence property: random ops, random delivery interleavings     *)
(* ------------------------------------------------------------------ *)

let prop_store_convergence =
  QCheck.Test.make ~name:"replicas converge under random delivery order"
    ~count:100
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 1 12)
               (triple (int_bound 2) (oneofl [ "a"; "b"; "c"; "d" ]) bool))
            (int_bound 10_000)))
    (fun (script, shuffle_seed) ->
      let c = three () in
      let ids = [ "dc-east"; "dc-west"; "dc-eu" ] in
      (* run the script, collecting batches (concurrent: no broadcast yet) *)
      let batches =
        List.map
          (fun (ri, e, add) ->
            let rep = Cluster.replica c (List.nth ids ri) in
            if add then add_to rep "set" e
            else remove_from rep "set" e)
          script
      in
      (* deliver everything to everyone in a pseudo-random order *)
      let st = ref shuffle_seed in
      let next_int bound =
        st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
        !st mod bound
      in
      let deliveries =
        List.concat_map
          (fun b ->
            List.filter_map
              (fun id ->
                if id = b.Replica.b_origin then None else Some (id, b))
              ids)
          batches
      in
      let arr = Array.of_list deliveries in
      for i = Array.length arr - 1 downto 1 do
        let j = next_int (i + 1) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      Array.iter
        (fun (id, b) -> Replica.receive (Cluster.replica c id) b)
        arr;
      (* all replicas must agree *)
      Cluster.quiescent c
      &&
      let views =
        List.map (fun id -> elements (Cluster.replica c id) "set") ids
      in
      List.for_all (fun v -> v = List.hd views) views)

(* ------------------------------------------------------------------ *)
(* Fast-path equivalence properties                                    *)
(* ------------------------------------------------------------------ *)

(* Run a randomized replication schedule: interleaved commits, partial
   and lost deliveries, gc (hence stable truncation) while gaps are
   still open, then anti-entropy recovery.  Checks the incremental
   digest against the from-scratch reference at every gc point and at
   the end, plus the quick-digest/exact-digest coherence.  Returns the
   final per-replica exact digests, whether quiescence was reached, and
   whether all internal digest checks held. *)
let run_schedule (script : (int * string * int) list) (seed : int) :
    string list * bool * bool =
  let c = three () in
  let ids = [ "dc-east"; "dc-west"; "dc-eu" ] in
  let st = ref (seed lor 1) in
  let next_int bound =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod bound
  in
  let ok = ref true in
  let check_digests () =
    List.iter
      (fun (r : Replica.t) ->
        if Replica.state_digest r <> Replica.state_digest_scratch r then
          ok := false)
      c.Cluster.replicas
  in
  let deferred = ref [] in
  List.iteri
    (fun i (ri, e, kind) ->
      let rep = Cluster.replica c (List.nth ids ri) in
      let b =
        match kind with
        | 0 -> add_to rep ("set-" ^ e) e
        | 1 -> remove_from rep ("set-" ^ e) e
        | _ -> dec_stock rep 1
      in
      (* each copy is delivered now, deferred, or lost (anti-entropy
         must close the gap from the origin's batch log) *)
      List.iter
        (fun id ->
          if id <> b.Replica.b_origin then
            match next_int 3 with
            | 0 -> Replica.receive (Cluster.replica c id) b
            | 1 -> deferred := (id, b) :: !deferred
            | _ -> ())
        ids;
      if i mod 3 = 2 then begin
        ignore (Replica.gc (Cluster.replica c (List.nth ids (next_int 3))));
        check_digests ()
      end)
    script;
  (* deliver the deferred copies in a shuffled order *)
  let arr = Array.of_list !deferred in
  for i = Array.length arr - 1 downto 1 do
    let j = next_int (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.iter (fun (id, b) -> Replica.receive (Cluster.replica c id) b) arr;
  (* anti-entropy heals the losses; gc every round so truncation runs
     while gaps are still open — a truncated batch a peer still needed
     would wedge convergence and fail the property *)
  let s = Sync.create ~base_backoff_ms:100.0 c in
  let now = ref 0.0 in
  let rounds = ref 0 in
  while (not (Cluster.quiescent c)) && !rounds < 80 do
    ignore (Sync.round s ~now:!now ~send:direct_send);
    now := !now +. 250.0;
    incr rounds;
    List.iter (fun (r : Replica.t) -> ignore (Replica.gc r)) c.Cluster.replicas
  done;
  check_digests ();
  (* quick-digest equality must coincide with exact-digest equality *)
  let pairs = function
    | (r0 : Replica.t) :: rest -> List.map (fun r -> (r0, r)) rest
    | [] -> []
  in
  List.iter
    (fun ((a : Replica.t), (b : Replica.t)) ->
      let quick_eq = Replica.quick_digest a = Replica.quick_digest b in
      let exact_eq = Replica.state_digest a = Replica.state_digest b in
      if quick_eq <> exact_eq then ok := false)
    (pairs c.Cluster.replicas);
  ( List.map (fun r -> Replica.state_digest r) c.Cluster.replicas,
    Cluster.quiescent c,
    !ok )

let schedule_gen =
  QCheck.(
    make
      Gen.(
        pair
          (list_size (int_range 1 14)
             (triple (int_bound 2) (oneofl [ "a"; "b"; "c"; "d" ]) (int_bound 2)))
          (int_bound 100_000)))

let prop_truncation_safe_under_loss =
  QCheck.Test.make
    ~name:"lossy delivery + gc truncation still converges via anti-entropy"
    ~count:60 schedule_gen
    (fun (script, seed) ->
      let _, quiescent, ok = run_schedule script seed in
      quiescent && ok)

let prop_fastpath_equivalence =
  QCheck.Test.make
    ~name:"fastpath on/off: bit-identical digests and outcomes" ~count:40
    schedule_gen
    (fun (script, seed) ->
      let on = Fastpath.with_all true (fun () -> run_schedule script seed) in
      let off = Fastpath.with_all false (fun () -> run_schedule script seed) in
      let d_on, q_on, ok_on = on and d_off, q_off, ok_off = off in
      d_on = d_off && q_on = q_off && q_on && ok_on && ok_off)

(* ------------------------------------------------------------------ *)
(* Delta-group equivalence property                                    *)
(* ------------------------------------------------------------------ *)

let rw_add (rep : Replica.t) (key : string) (e : string) : Replica.batch =
  let tx = Txn.begin_ rep in
  let s = Obj.as_rwset (Txn.get tx key Obj.T_rwset) in
  Txn.update tx key
    (Obj.Op_rwset
       (Rwset.prepare_add s ~dot:(Txn.fresh_dot tx) ~vv:(Txn.current_vv tx) e));
  Option.get (Txn.commit tx)

let rw_remove (rep : Replica.t) (key : string) (e : string) : Replica.batch =
  let tx = Txn.begin_ rep in
  let s = Obj.as_rwset (Txn.get tx key Obj.T_rwset) in
  Txn.update tx key
    (Obj.Op_rwset (Rwset.prepare_remove s ~vv:(Txn.fresh_vv tx) e));
  Option.get (Txn.commit tx)

let prop_delta_merge_equiv =
  (* the three ways eu can learn east's history — replayed ops, one
     joined delta group per origin, full rendered state — must land on
     the same observable state, for every delta CRDT mixed freely *)
  QCheck.Test.make ~name:"delta repair == full-state merge == op application"
    ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 16)
            (pair (int_bound 4) (oneofl [ "a"; "b"; "c" ]))))
    (fun script ->
      let c = three () in
      let east = Cluster.replica c "dc-east" in
      let west = Cluster.replica c "dc-west" in
      (* east commits; west is the op-application reference; eu is dark *)
      List.iter
        (fun (kind, e) ->
          let b =
            match kind with
            | 0 -> add_to east ("aw-" ^ e) e
            | 1 -> remove_from east ("aw-" ^ e) e
            | 2 -> rw_add east ("rw-" ^ e) e
            | 3 -> rw_remove east ("rw-" ^ e) e
            | _ -> dec_stock east 1
          in
          Replica.receive west b)
        script;
      let d_ref = Replica.state_digest east in
      let snap = Cluster.snapshot c in
      let try_mode mode =
        Cluster.restore c snap;
        let eu = Cluster.replica c "dc-eu" in
        let s = Sync.create ~base_backoff_ms:1.0 c in
        ignore (Sync.repair s ~mode ~src:east ~dst:eu);
        Replica.state_digest eu = d_ref
      in
      Replica.state_digest west = d_ref
      && try_mode Sync.Deltas
      && try_mode Sync.Full_state)

(* ------------------------------------------------------------------ *)
(* Consistency-typed reads                                             *)
(* ------------------------------------------------------------------ *)

let read_counter (v : Obj.t option) : int =
  match v with Some o -> Pncounter.value (Obj.as_pncounter o) | None -> 0

(** Deliver [b] to the non-origin replicas selected by [mask] (bit per
    replica, in cluster order). *)
let masked_deliver (c : Cluster.t) (b : Replica.batch) (mask : int) : unit =
  let others =
    List.filter
      (fun (r : Replica.t) -> r.Replica.id <> b.Replica.b_origin)
      c.Cluster.replicas
  in
  List.iteri
    (fun i r -> if mask land (1 lsl i) <> 0 then Replica.receive r b)
    others

(** Seed the escrow ledger on [key] and broadcast it: 30 granted at
    replica 0, headroom moved 10/10 to replicas 1 and 2, value raised to
    8, decrement rights transferred 3/3 to replicas 1 and 2. *)
let seed_escrow (c : Cluster.t) ~(key : string) : Replica.batch =
  let reps = Array.of_list c.Cluster.replicas in
  let tx = Txn.begin_ reps.(0) in
  let bc () = Obj.as_bcounter (Txn.get tx key Obj.T_bcounter) in
  let upd op = Txn.update tx key (Obj.Op_bcounter op) in
  let id i = reps.(i).Replica.id in
  upd (Bcounter.prepare_grant (bc ()) ~rep:(id 0) 30);
  upd (Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 1) 10);
  upd (Bcounter.prepare_hmove (bc ()) ~from_:(id 0) ~to_:(id 2) 10);
  upd (Bcounter.prepare_inc (bc ()) ~rep:(id 0) 8);
  upd (Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 1) 3);
  upd (Bcounter.prepare_transfer (bc ()) ~from_:(id 0) ~to_:(id 2) 3);
  let b = Option.get (Txn.commit tx) in
  Cluster.broadcast_now c b;
  b

let test_read_weak_local () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let _ = Testutil.counter_delta ~key:"ctr" east 5 in
  (* not broadcast *)
  let r_east = Read.read c Read.Weak ~prefer:"dc-east" "ctr" in
  let r_west = Read.read c Read.Weak ~prefer:"dc-west" "ctr" in
  Alcotest.(check int) "weak at the origin sees the commit" 5
    (read_counter r_east.Read.value);
  Alcotest.(check int) "weak elsewhere serves the stale local state" 0
    (read_counter r_west.Read.value);
  Alcotest.(check string) "served by the preferred replica" "dc-west"
    r_west.Read.served_by;
  Alcotest.(check bool) "weak never escalates" false
    (r_east.Read.escalated || r_west.Read.escalated)

let test_read_bounded_cover_rule () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let b = Testutil.counter_delta ~key:"ctr" east 3 in
  let bound = b.Replica.b_after in
  (* west does not cover the bound: the read must route to a covering
     replica (east), not escalate *)
  let r = Read.read c (Read.Bounded bound) ~prefer:"dc-west" "ctr" in
  Alcotest.(check string) "served by the covering replica" "dc-east"
    r.Read.served_by;
  Alcotest.(check bool) "no quiesce needed" false r.Read.escalated;
  Alcotest.(check bool) "serving clock covers the bound" true
    (Vclock.leq bound r.Read.at);
  Alcotest.(check int) "the bounded read reflects the bound" 3
    (read_counter r.Read.value);
  (* once west covers the bound it serves locally *)
  Replica.receive (Cluster.replica c "dc-west") b;
  let r2 = Read.read c (Read.Bounded bound) ~prefer:"dc-west" "ctr" in
  Alcotest.(check string) "served locally once covered" "dc-west"
    r2.Read.served_by;
  Alcotest.(check bool) "still no escalation" false r2.Read.escalated

let test_read_strong_quiesces () =
  let c = three () in
  let east = Cluster.replica c "dc-east" in
  let _ = Testutil.counter_delta ~key:"ctr" east 7 in
  (* never broadcast: only the quiesce path can surface it at west *)
  let r = Read.read c Read.Strong ~prefer:"dc-west" "ctr" in
  Alcotest.(check int) "strong read sees the unreplicated commit" 7
    (read_counter r.Read.value);
  Alcotest.(check string) "served by the preferred replica" "dc-west"
    r.Read.served_by;
  Alcotest.(check bool) "cluster quiescent afterwards" true
    (Cluster.quiescent c)

let test_interval_brackets_truth () =
  let c = three () in
  let _ = seed_escrow c ~key:"stock" in
  let east = Cluster.replica c "dc-east" in
  let west = Cluster.replica c "dc-west" in
  (* east spends 2 of its decrement rights; the commit stays local *)
  let tx = Txn.begin_ east in
  let bc = Obj.as_bcounter (Txn.get tx "stock" Obj.T_bcounter) in
  Txn.update tx "stock"
    (Obj.Op_bcounter (Bcounter.prepare_dec bc ~rep:east.Replica.id 2));
  let b = Option.get (Txn.commit tx) in
  (* truth (strongly consistent value) is 8 - 2 = 6 *)
  let iv_w = Read.interval_at west "stock" in
  Alcotest.(check int) "west lo = its own rights" 3 iv_w.Read.lo;
  Alcotest.(check (option int)) "west hi = granted - its headroom" (Some 20)
    iv_w.Read.hi;
  Alcotest.(check int) "west still observes the pre-dec value" 8
    iv_w.Read.observed;
  Alcotest.(check bool) "west's interval brackets the truth" true
    (iv_w.Read.lo <= 6 && 6 <= Option.get iv_w.Read.hi);
  let iv_e = Read.interval_at east "stock" in
  Alcotest.(check int) "east lo after spending its rights" 0 iv_e.Read.lo;
  Alcotest.(check (option int)) "east hi after dec replenishes headroom"
    (Some 26) iv_e.Read.hi;
  Alcotest.(check int) "east observes the dec" 6 iv_e.Read.observed;
  (* delivery tightens west's observation but the bracket holds *)
  Replica.receive west b;
  let iv_w2 = Read.interval_at west "stock" in
  Alcotest.(check int) "west observes the dec after delivery" 6
    iv_w2.Read.observed;
  Alcotest.(check bool) "bracket still holds" true
    (iv_w2.Read.lo <= 6 && 6 <= Option.get iv_w2.Read.hi)

let test_descent_shard_boundary () =
  (* divergence counts straddling the shard count: k = shards - 1,
     shards, shards + 1 — the three-level descent must localize exactly
     the touched keys and stay cheaper than a full keyspace scan *)
  let shards = 16 in
  let n_keys = 64 in
  List.iter
    (fun k ->
      let c = Cluster.create ~shards Testutil.regions in
      let east = Cluster.replica c "dc-east" in
      let west = Cluster.replica c "dc-west" in
      for i = 0 to n_keys - 1 do
        Cluster.broadcast_now c (inc_keys east [ Printf.sprintf "key-%02d" i ])
      done;
      let touched =
        List.init k (fun i -> Printf.sprintf "key-%02d" (i * 3))
      in
      let b = inc_keys east touched in
      let d = Sync.divergent_keys ~a:east ~b:west in
      Alcotest.(check (list string))
        (Printf.sprintf "k=%d: exactly the touched keys localized" k)
        (List.sort String.compare touched)
        (List.sort String.compare d.Sync.divergent);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: descent cheaper than a full scan (%d nodes)" k
           d.Sync.nodes_visited)
        true
        (d.Sync.nodes_visited < shards + 1 + (2 * n_keys));
      Cluster.broadcast_now c b;
      let d2 = Sync.divergent_keys ~a:east ~b:west in
      Alcotest.(check (list string))
        (Printf.sprintf "k=%d: healed" k)
        [] d2.Sync.divergent)
    [ shards - 1; shards; shards + 1 ]

let prop_interval_brackets_strong =
  QCheck.Test.make
    ~name:"escrow interval reads bracket the strongly consistent value"
    ~count:60
    QCheck.(
      make
        Gen.(list_size (int_range 1 24) (triple (int_bound 2) bool (int_bound 3))))
    (fun script ->
      let c = three () in
      let shadow = Replica.create ~region:"shadow" "shadow" in
      shadow.Replica.peers <- List.map fst Testutil.regions;
      Replica.receive shadow (seed_escrow c ~key:"stock");
      let reps = Array.of_list c.Cluster.replicas in
      let ok = ref true in
      List.iter
        (fun (ri, is_inc, mask) ->
          let rep = reps.(ri) in
          let tx = Txn.begin_ rep in
          let bc = Obj.as_bcounter (Txn.get tx "stock" Obj.T_bcounter) in
          (match
             if is_inc then Bcounter.prepare_inc bc ~rep:rep.Replica.id 1
             else Bcounter.prepare_dec bc ~rep:rep.Replica.id 1
           with
          | op ->
              Txn.update tx "stock" (Obj.Op_bcounter op);
              let b = Option.get (Txn.commit tx) in
              (* the shadow sees every commit instantly: it holds the
                 strongly consistent value.  The cluster sees a random
                 subset. *)
              Replica.receive shadow b;
              masked_deliver c b mask
          | exception
              ( Bcounter.Insufficient_rights _
              | Bcounter.Insufficient_headroom _ ) ->
              Txn.abort tx);
          let truth =
            match Replica.peek shadow "stock" with
            | Some o -> Bcounter.quick_value (Obj.as_bcounter o)
            | None -> 0
          in
          Array.iter
            (fun r ->
              let iv = Read.interval_at r "stock" in
              let hi_ok =
                match iv.Read.hi with Some h -> truth <= h | None -> true
              in
              if not (iv.Read.lo <= truth && hi_ok) then ok := false)
            reps)
        script;
      !ok)

let prop_bound_zero_equals_strong =
  QCheck.Test.make
    ~name:"staleness-bound-0 reads match strong reads"
    ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 16)
            (triple (int_bound 2) (int_range 1 3) (int_bound 3))))
    (fun script ->
      let c = three () in
      let ids = [| "dc-east"; "dc-west"; "dc-eu" |] in
      List.iter
        (fun (ri, n, mask) ->
          let rep = Cluster.replica c ids.(ri) in
          masked_deliver c (Testutil.counter_delta ~key:"ctr" rep n) mask)
        script;
      (* bound 0 = cover everything committed anywhere right now *)
      let bound =
        List.fold_left
          (fun acc (r : Replica.t) -> Vclock.merge acc r.Replica.vv)
          Vclock.empty c.Cluster.replicas
      in
      let rb = Read.read c (Read.Bounded bound) ~prefer:"dc-west" "ctr" in
      let rs = Read.read c Read.Strong ~prefer:"dc-west" "ctr" in
      read_counter rb.Read.value = read_counter rs.Read.value
      && Vclock.leq bound rb.Read.at
      && Vclock.leq bound rs.Read.at)

let prop_weak_converges_at_quiescence =
  QCheck.Test.make
    ~name:"weak reads converge to the strong read at quiescence"
    ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 16)
            (triple (int_bound 2) (int_range 1 3) (int_bound 3))))
    (fun script ->
      let c = three () in
      let ids = [| "dc-east"; "dc-west"; "dc-eu" |] in
      List.iter
        (fun (ri, n, mask) ->
          let rep = Cluster.replica c ids.(ri) in
          masked_deliver c (Testutil.counter_delta ~key:"ctr" rep n) mask)
        script;
      (* the strong read drives the cluster to quiescence... *)
      let rs = Read.read c Read.Strong ~prefer:"dc-east" "ctr" in
      let strong = read_counter rs.Read.value in
      (* ...after which every replica's weak read agrees with it *)
      Cluster.quiescent c
      && List.for_all
           (fun (r : Replica.t) ->
             let w = Read.read c Read.Weak ~prefer:r.Replica.id "ctr" in
             read_counter w.Read.value = strong && not w.Read.escalated)
           c.Cluster.replicas)

(* generator seed from IPA_TEST_SEED (printed on failure) *)
let qcheck_tests =
  List.map
    (Testutil.to_alcotest ~default:0)
    [
      prop_store_convergence;
      prop_truncation_safe_under_loss;
      prop_fastpath_equivalence;
      prop_delta_merge_equiv;
      prop_interval_brackets_strong;
      prop_bound_zero_equals_strong;
      prop_weak_converges_at_quiescence;
    ]

let () =
  Alcotest.run "ipa_store"
    [
      ( "replication",
        [
          Alcotest.test_case "commit applies locally" `Quick
            test_commit_applies_locally;
          Alcotest.test_case "broadcast delivers" `Quick test_broadcast_delivers;
          Alcotest.test_case "causal buffering" `Quick test_causal_buffering;
          Alcotest.test_case "causal cross-replica" `Quick
            test_causal_cross_replica;
          Alcotest.test_case "own batch ignored" `Quick test_own_batch_ignored;
        ] );
      ( "exactly-once delivery",
        [
          Alcotest.test_case "duplicate batch not re-applied" `Quick
            test_duplicate_batch_not_reapplied;
          Alcotest.test_case "duplicate of pending dropped" `Quick
            test_duplicate_of_pending_dropped;
          Alcotest.test_case "late retransmission dropped" `Quick
            test_retransmission_after_apply_dropped;
        ] );
      ( "state digests",
        [
          Alcotest.test_case "converged replicas digest equal" `Quick
            test_digest_converged_replicas_equal;
          Alcotest.test_case "read-created objects ignored" `Quick
            test_digest_ignores_read_created_objects;
          Alcotest.test_case "quiescent detects divergence" `Quick
            test_quiescent_detects_state_divergence;
        ] );
      ( "anti-entropy",
        [
          Alcotest.test_case "recovers lost batch" `Quick
            test_sync_recovers_lost_batch;
          Alcotest.test_case "backoff paces retransmissions" `Quick
            test_sync_backoff_paces_retransmissions;
          Alcotest.test_case "backoff cap reached" `Quick
            test_sync_backoff_cap_reached;
          Alcotest.test_case "gap closed mid-backoff" `Quick
            test_sync_gap_closed_mid_backoff;
          Alcotest.test_case "no-op when converged" `Quick
            test_sync_noop_when_converged;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "read your writes" `Quick test_txn_read_your_writes;
          Alcotest.test_case "atomic batch" `Quick test_txn_atomic_batch;
          Alcotest.test_case "read-only" `Quick test_txn_readonly_no_batch;
          Alcotest.test_case "counts" `Quick test_txn_counts;
          Alcotest.test_case "double commit" `Quick
            test_txn_double_commit_rejected;
        ] );
      ( "conflict resolution",
        [
          Alcotest.test_case "add wins" `Quick test_concurrent_add_remove_add_wins;
          Alcotest.test_case "counters merge" `Quick test_concurrent_counter;
        ] );
      ( "stability",
        [
          Alcotest.test_case "cut advances" `Quick test_stability_cut_advances;
          Alcotest.test_case "gc reclaims barriers" `Quick
            test_gc_reclaims_rwset_barriers;
          Alcotest.test_case "gc preserves unstable" `Quick
            test_gc_preserves_unstable_state;
          Alcotest.test_case "gc awset payloads" `Quick test_gc_awset_payload;
          Alcotest.test_case "log truncation waits for stability" `Quick
            test_truncation_retains_unstable_then_drops;
        ] );
      ( "snapshot/restore",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_restore_roundtrip;
          Alcotest.test_case "replica works after restore" `Quick
            test_snapshot_restore_replica_still_works;
        ] );
      ( "sharding & digest tree",
        [
          Alcotest.test_case "shard count invariance" `Quick
            test_shard_count_invariance;
          Alcotest.test_case "digest-tree descent localizes" `Quick
            test_digest_tree_descent;
          Alcotest.test_case "snapshot/restore across shard counts" `Quick
            test_snapshot_restore_across_shards;
          Alcotest.test_case "drain linear on reversed burst" `Quick
            test_drain_linear_reversed_burst;
          Alcotest.test_case "commit allocation independent of keyspace" `Quick
            test_commit_alloc_independent_of_keyspace;
        ] );
      ( "durability (WAL)",
        [
          Alcotest.test_case "crash/recover round-trip" `Quick
            test_wal_recover_roundtrip;
          Alcotest.test_case "truncated tail" `Quick test_wal_truncated_tail;
          Alcotest.test_case "flipped checksum byte" `Quick
            test_wal_flipped_checksum_byte;
          Alcotest.test_case "duplicated record" `Quick
            test_wal_duplicated_record;
          Alcotest.test_case "torn final record" `Quick
            test_wal_torn_final_record;
          Alcotest.test_case "checkpoint snapshot + replay" `Quick
            test_wal_checkpoint_snapshot_replay;
          Alcotest.test_case "group commit loses unflushed applies" `Quick
            test_wal_group_commit_loses_unflushed_applies;
        ] );
      ( "delta repair",
        [
          Alcotest.test_case "delta sync cheaper than full state" `Quick
            test_delta_repair_fewer_bytes;
        ] );
      ( "remote-first bounds",
        [
          Alcotest.test_case "compset bound carried in ops" `Quick
            test_remote_first_compset_bounds;
          Alcotest.test_case "compcounter bound carried in ops" `Quick
            test_remote_first_compcounter_bounds;
        ] );
      ( "consistency reads",
        [
          Alcotest.test_case "weak serves locally" `Quick test_read_weak_local;
          Alcotest.test_case "bounded routes to a covering replica" `Quick
            test_read_bounded_cover_rule;
          Alcotest.test_case "strong quiesces then serves" `Quick
            test_read_strong_quiesces;
          Alcotest.test_case "interval brackets the truth" `Quick
            test_interval_brackets_truth;
          Alcotest.test_case "descent at shard-boundary divergence" `Quick
            test_descent_shard_boundary;
        ] );
      ("properties", qcheck_tests);
    ]
