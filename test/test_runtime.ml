(** Tests for [ipa_runtime]: the system configurations (Local, Strong,
    Indigo), the service/queue model and the workload driver. *)

open Ipa_crdt
open Ipa_store
open Ipa_sim
open Ipa_runtime

(* environment + op helpers shared with the other suites *)
let make = Testutil.make
let execute_sync = Testutil.execute_sync
let counter_value rep = Testutil.counter_value ~key:"ctr" rep

(* an op incrementing one counter *)
let incr_op ?(key = "ctr") () : Config.op_exec =
  {
    Config.op_name = "incr";
    is_update = true;
    reservations = [ (key, Config.Exclusive) ];
    run =
      (fun rep ->
        let tx = Txn.begin_ rep in
        let c = Obj.as_pncounter (Txn.get tx key Obj.T_pncounter) in
        Txn.update tx key
          (Obj.Op_pncounter (Pncounter.prepare c ~rep:rep.Replica.id 1));
        Config.outcome (Txn.commit tx));
  }

let read_op () : Config.op_exec =
  {
    Config.op_name = "read";
    is_update = false;
    reservations = [];
    run =
      (fun rep ->
        let tx = Txn.begin_ rep in
        let _ = Txn.get tx "ctr" Obj.T_pncounter in
        ignore (Txn.commit tx);
        Config.outcome None);
  }

(* ------------------------------------------------------------------ *)
(* Local mode                                                          *)
(* ------------------------------------------------------------------ *)

let test_local_executes_and_replicates () =
  let engine, cfg, cluster = make Config.Local in
  let lat, _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "local latency < 5ms" true (lat < 5.0);
  (* replication reached all replicas *)
  List.iter
    (fun (r : Replica.t) ->
      Alcotest.(check int) (r.Replica.id ^ " has update") 1 (counter_value r))
    cluster.Cluster.replicas

let test_local_latency_independent_of_region () =
  let engine, cfg, _ = make Config.Local in
  let l1, _ = execute_sync engine cfg ~region:"us-east" (incr_op ()) in
  let engine2, cfg2, _ = make Config.Local in
  ignore engine;
  let l2, _ = execute_sync engine2 cfg2 ~region:"eu-west" (incr_op ()) in
  Alcotest.(check bool) "within 1ms" true (abs_float (l1 -. l2) < 1.0)

(* ------------------------------------------------------------------ *)
(* Strong mode                                                         *)
(* ------------------------------------------------------------------ *)

let test_strong_remote_write_pays_rtt () =
  let engine, cfg, _ = make Config.Strong in
  let lat, _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  (* one 80ms RTT to the primary plus service *)
  Alcotest.(check bool) "pays the WAN round-trip" true (lat > 79.0 && lat < 90.0)

let test_strong_primary_write_is_local () =
  let engine, cfg, _ = make Config.Strong in
  let lat, _ = execute_sync engine cfg ~region:"us-east" (incr_op ()) in
  Alcotest.(check bool) "primary region is fast" true (lat < 5.0)

let test_strong_read_is_local () =
  let engine, cfg, _ = make Config.Strong in
  let lat, _ = execute_sync engine cfg ~region:"eu-west" (read_op ()) in
  Alcotest.(check bool) "reads stay local" true (lat < 5.0)

let test_strong_write_lands_at_primary () =
  let engine, cfg, cluster = make Config.Strong in
  let _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  let primary = Cluster.replica cluster "dc-east" in
  Alcotest.(check int) "applied at primary" 1 (counter_value primary)

(* ------------------------------------------------------------------ *)
(* Indigo mode                                                         *)
(* ------------------------------------------------------------------ *)

let test_indigo_first_use_is_local () =
  let engine, cfg, _ = make Config.Indigo in
  let lat, _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "first acquisition is free" true (lat < 5.0)

let test_indigo_exclusive_migration_pays_rtt () =
  let engine, cfg, _ = make Config.Indigo in
  let _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  (* the reservation now lives at us-west; us-east must fetch it *)
  let lat, _ = execute_sync engine cfg ~region:"us-east" (incr_op ()) in
  Alcotest.(check bool) "migration pays RTT" true (lat > 79.0);
  (* and it is now local to us-east *)
  let lat2, _ = execute_sync engine cfg ~region:"us-east" (incr_op ()) in
  Alcotest.(check bool) "subsequent op is local" true (lat2 < 5.0)

let test_indigo_shared_reservations_stay () =
  let engine, cfg, _ = make Config.Indigo in
  let op region =
    {
      (incr_op ()) with
      Config.reservations = [ ("shared-res", Config.Shared) ];
      op_name = "sh-" ^ region;
    }
  in
  let _ = execute_sync engine cfg ~region:"us-west" (op "w") in
  (* first fetch from the existing sharer pays, afterwards both hold it *)
  let _ = execute_sync engine cfg ~region:"us-east" (op "e1") in
  let lat_e, _ = execute_sync engine cfg ~region:"us-east" (op "e2") in
  let lat_w, _ = execute_sync engine cfg ~region:"us-west" (op "w2") in
  Alcotest.(check bool) "shared rights do not ping-pong" true
    (lat_e < 5.0 && lat_w < 5.0)

let test_indigo_exclusive_revokes_shares () =
  let engine, cfg, _ = make Config.Indigo in
  let sh region_name =
    {
      (incr_op ()) with
      Config.reservations = [ ("res", Config.Shared) ];
      op_name = "sh-" ^ region_name;
    }
  in
  let ex = { (incr_op ()) with Config.reservations = [ ("res", Config.Exclusive) ] } in
  let _ = execute_sync engine cfg ~region:"us-west" (sh "w") in
  let _ = execute_sync engine cfg ~region:"us-east" (sh "e") in
  (* exclusive from eu-west must revoke both shares *)
  let lat, _ = execute_sync engine cfg ~region:"eu-west" ex in
  Alcotest.(check bool) "revocation pays a WAN RTT" true (lat > 79.0)

(* ------------------------------------------------------------------ *)
(* Hybrid mode                                                         *)
(* ------------------------------------------------------------------ *)

let test_hybrid_routes_flagged_ops () =
  let engine, cfg, _ = make (Config.Hybrid (fun n -> n = "flagged")) in
  (* an unflagged op is local *)
  let lat, _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "unflagged op local" true (lat < 5.0);
  (* flagged ops coordinate: the second region pays the hand-off *)
  let flagged region_tag =
    { (incr_op ~key:"shared" ()) with Config.op_name = "flagged" }
    |> fun o -> ignore region_tag; o
  in
  let _ = execute_sync engine cfg ~region:"us-west" (flagged "w") in
  let lat2, _ = execute_sync engine cfg ~region:"us-east" (flagged "e") in
  Alcotest.(check bool) "flagged op pays coordination" true (lat2 > 79.0)

let test_hybrid_forces_exclusive () =
  (* even if the op declares shared reservations, hybrid coordination
     serializes it *)
  let engine, cfg, _ = make (Config.Hybrid (fun n -> n = "flagged")) in
  let flagged =
    {
      (incr_op ()) with
      Config.op_name = "flagged";
      reservations = [ ("res", Config.Shared) ];
    }
  in
  let _ = execute_sync engine cfg ~region:"us-west" flagged in
  let lat, _ = execute_sync engine cfg ~region:"us-east" flagged in
  Alcotest.(check bool) "shared demoted to exclusive hand-off" true
    (lat > 79.0)

(* ------------------------------------------------------------------ *)
(* Failure injection (§5.2.5)                                          *)
(* ------------------------------------------------------------------ *)

let test_fail_local_reroutes () =
  let engine, cfg, cluster = make Config.Local in
  Config.fail_region cfg "us-west" ~for_ms:10_000.0;
  let lat, o = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "still available" false o.Config.unavailable;
  (* rerouted to the closest live region: pays a WAN RTT *)
  Alcotest.(check bool) "pays the detour" true (lat > 79.0);
  (* the transaction was executed at a live replica, not the dead one *)
  (match o.Config.batch with
  | Some b ->
      Alcotest.(check bool) "executed elsewhere" true
        (b.Replica.b_origin <> "dc-west")
  | None -> Alcotest.fail "expected a committed batch");
  (* once recovered (all events drained), the replica caught up *)
  let west = Cluster.replica cluster "dc-west" in
  Alcotest.(check int) "dead replica caught up after recovery" 1
    (counter_value west)

let test_fail_strong_primary_down () =
  let engine, cfg, _ = make Config.Strong in
  Config.fail_region cfg "us-east" ~for_ms:10_000.0;
  let _, o = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "updates unavailable" true o.Config.unavailable;
  (* reads remain available *)
  let _, o2 = execute_sync engine cfg ~region:"us-west" (read_op ()) in
  Alcotest.(check bool) "reads fine" false o2.Config.unavailable

let test_fail_indigo_holder_down () =
  let engine, cfg, _ = make Config.Indigo in
  (* the reservation migrates to us-west, then us-west dies *)
  let _ = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Config.fail_region cfg "us-west" ~for_ms:10_000.0;
  let _, o = execute_sync engine cfg ~region:"us-east" (incr_op ()) in
  Alcotest.(check bool) "blocked on dead holder" true o.Config.unavailable;
  (* an op on a fresh resource is fine *)
  let _, o2 =
    execute_sync engine cfg ~region:"us-east" (incr_op ~key:"other" ())
  in
  Alcotest.(check bool) "unrelated op executes" false o2.Config.unavailable

let test_fail_recovery () =
  let engine, cfg, _ = make Config.Local in
  Config.fail_region cfg "us-west" ~for_ms:100.0;
  Engine.schedule engine ~delay:200.0 (fun () -> ());
  Engine.run engine;
  let lat, o = execute_sync engine cfg ~region:"us-west" (incr_op ()) in
  Alcotest.(check bool) "recovered" false o.Config.unavailable;
  Alcotest.(check bool) "local again" true (lat < 5.0)

(* ------------------------------------------------------------------ *)
(* Service model                                                       *)
(* ------------------------------------------------------------------ *)

let multi_update_op n : Config.op_exec =
  {
    Config.op_name = "multi";
    is_update = true;
    reservations = [];
    run =
      (fun rep ->
        let tx = Txn.begin_ rep in
        let c = Obj.as_pncounter (Txn.get tx "ctr" Obj.T_pncounter) in
        for _ = 1 to n do
          Txn.update tx "ctr"
            (Obj.Op_pncounter (Pncounter.prepare c ~rep:rep.Replica.id 1))
        done;
        Config.outcome (Txn.commit tx));
  }

let test_service_scales_with_updates () =
  let engine, cfg, _ = make Config.Local in
  let l1, _ = execute_sync engine cfg ~region:"us-east" (multi_update_op 1) in
  let engine2, cfg2, _ = make Config.Local in
  ignore engine;
  let l100, _ =
    execute_sync engine2 cfg2 ~region:"us-east" (multi_update_op 100)
  in
  Alcotest.(check bool) "more updates cost more" true (l100 > l1 +. 3.0)

let test_queueing_under_load () =
  (* saturate one region's servers: later ops must wait *)
  let engine, cfg, _ = make Config.Local in
  let lats = ref [] in
  for _ = 1 to 200 do
    Config.execute cfg ~client_region:"us-east" (incr_op ())
      ~complete:(fun lat _ -> lats := lat :: !lats)
  done;
  Engine.run engine;
  let mx = List.fold_left max 0.0 !lats in
  Alcotest.(check bool) "queueing delay appears" true (mx > 10.0)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let test_driver_closed_loop () =
  let engine, cfg, _ = make Config.Local in
  ignore engine;
  let w =
    {
      Driver.clients_per_region = 2;
      duration_ms = 1_000.0;
      warmup_ms = 100.0;
      think_time_ms = 0.0;
      only_region = None;
      next_op = (fun _rng ~region:_ -> incr_op ());
    }
  in
  let m = Driver.run cfg w in
  Alcotest.(check bool) "work happened" true (Metrics.count m () > 100);
  Alcotest.(check bool) "throughput positive" true (Metrics.throughput m > 0.0)

let test_driver_only_region () =
  let engine, cfg, cluster = make Config.Local in
  ignore engine;
  let w =
    {
      Driver.clients_per_region = 1;
      duration_ms = 500.0;
      warmup_ms = 50.0;
      think_time_ms = 1.0;
      only_region = Some "eu-west";
      next_op = (fun _rng ~region:_ -> incr_op ());
    }
  in
  let _ = Driver.run cfg w in
  (* all updates originated at the eu replica *)
  let eu = Cluster.replica cluster "dc-eu" in
  Alcotest.(check bool) "eu committed everything" true
    (eu.Replica.committed > 0);
  let east = Cluster.replica cluster "dc-east" in
  Alcotest.(check int) "east committed nothing" 0 east.Replica.committed

let test_driver_deterministic () =
  let run () =
    let _, cfg, _ = make Config.Local in
    let w =
      {
        Driver.clients_per_region = 2;
        duration_ms = 500.0;
        warmup_ms = 50.0;
        think_time_ms = 0.5;
        only_region = None;
        next_op = (fun _rng ~region:_ -> incr_op ());
      }
    in
    let m = Driver.run ~seed:123 cfg w in
    (Metrics.count m (), Metrics.mean_latency m ())
  in
  let c1, l1 = run () and c2, l2 = run () in
  Alcotest.(check int) "same op count" c1 c2;
  Alcotest.(check (float 0.0001)) "same mean latency" l1 l2

let test_driver_replicas_converge () =
  let engine, cfg, cluster = make Config.Local in
  let w =
    {
      Driver.clients_per_region = 2;
      duration_ms = 1_000.0;
      warmup_ms = 0.0;
      think_time_ms = 1.0;
      only_region = None;
      next_op = (fun _rng ~region:_ -> incr_op ());
    }
  in
  let _ = Driver.run cfg w in
  Engine.run engine;
  (* after full delivery every replica sees every increment *)
  let values =
    List.map (fun r -> counter_value r) cluster.Cluster.replicas
  in
  Alcotest.(check bool) "all replicas equal" true
    (List.for_all (fun v -> v = List.hd values) values);
  Alcotest.(check bool) "cluster quiescent" true (Cluster.quiescent cluster)

(* ------------------------------------------------------------------ *)
(* Faults on the wire: exactly-once convergence                        *)
(* ------------------------------------------------------------------ *)

let make_faulty = Testutil.make_faulty

let total_committed cluster =
  List.fold_left
    (fun acc (r : Replica.t) -> acc + r.Replica.committed)
    0 cluster.Cluster.replicas

let run_faulty_workload (plan : Net.plan) ~seed =
  let engine, cfg, cluster = make_faulty ~seed plan in
  let w =
    {
      Driver.clients_per_region = 2;
      duration_ms = 4_000.0;
      warmup_ms = 0.0;
      think_time_ms = 20.0;
      only_region = None;
      next_op = (fun _rng ~region:_ -> incr_op ());
    }
  in
  let m = Driver.run ~seed cfg w in
  (* let anti-entropy close any gaps the workload window left open *)
  Engine.run_until engine 60_000.0;
  (engine, cfg, cluster, m)

let check_converged cluster =
  Alcotest.(check bool) "cluster quiescent" true (Cluster.quiescent cluster);
  let expect = total_committed cluster in
  Alcotest.(check bool) "some work happened" true (expect > 0);
  List.iter
    (fun (r : Replica.t) ->
      (* every increment applied everywhere, and exactly once *)
      Alcotest.(check int)
        (r.Replica.id ^ " counted every increment once")
        expect (counter_value r))
    cluster.Cluster.replicas

let test_converges_under_loss_and_duplication seed =
  let plan =
    {
      Net.faults =
        { Net.no_faults.Net.faults with loss = 0.05; duplication = 0.05 };
      partitions = [];
    }
  in
  let _, cfg, cluster, _ = run_faulty_workload plan ~seed in
  check_converged cluster;
  (* the fault plan actually did something, and anti-entropy repaired it *)
  let s = Net.stats cfg.Config.net in
  Alcotest.(check bool) "packets were dropped" true (s.Net.dropped > 0);
  Alcotest.(check bool) "packets were duplicated" true (s.Net.duplicated > 0);
  let dups =
    List.fold_left
      (fun acc (r : Replica.t) -> acc + r.Replica.duplicates_dropped)
      0 cluster.Cluster.replicas
  in
  Alcotest.(check bool) "duplicates reached replicas and were dropped" true
    (dups > 0)

let test_converges_across_partition seed =
  let plan =
    {
      Net.faults = { Net.no_faults.Net.faults with loss = 0.01 };
      partitions =
        [
          {
            Net.parts = ([ "us-east"; "us-west" ], [ "eu-west" ]);
            from_ms = 500.0;
            until_ms = 3_000.0;
          };
        ];
    }
  in
  let _, _, cluster, _ = run_faulty_workload plan ~seed in
  check_converged cluster

let test_faulty_run_deterministic seed =
  let plan =
    {
      Net.faults =
        { Net.no_faults.Net.faults with loss = 0.05; duplication = 0.02 };
      partitions = [];
    }
  in
  let run () =
    let _, cfg, cluster, m = run_faulty_workload plan ~seed in
    let s = Net.stats cfg.Config.net in
    ( Metrics.count m (),
      total_committed cluster,
      s.Net.sent,
      s.Net.dropped,
      s.Net.duplicated )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed reproduces the run bit-for-bit" true (a = b)

let test_delivery_metrics_populated seed =
  let plan =
    {
      Net.faults = { Net.no_faults.Net.faults with loss = 0.05 };
      partitions = [];
    }
  in
  let _, _, _, m = run_faulty_workload plan ~seed in
  let d = m.Metrics.delivery in
  Alcotest.(check bool) "sent tracked" true (d.Metrics.batches_sent > 0);
  Alcotest.(check bool) "drops tracked" true (d.Metrics.batches_dropped > 0);
  Alcotest.(check bool) "retransmissions tracked" true
    (d.Metrics.batches_retransmitted > 0);
  Alcotest.(check bool) "visibility sampled" true (d.Metrics.visibility_n > 0);
  Alcotest.(check bool) "visibility positive" true
    (List.for_all (fun v -> v > 0.0) d.Metrics.visibility)

(* ------------------------------------------------------------------ *)
(* Escrow planner (runtime half)                                       *)
(* ------------------------------------------------------------------ *)

let apply_all c ops = List.fold_left Bcounter.apply c ops

let test_escrow_seed_placement () =
  let shares = [ ("r1", 5); ("r2", 3); ("r3", 2) ] in
  let c =
    apply_all Bcounter.empty (Escrow.seed ~shares ~value:10 ())
  in
  Alcotest.(check int) "value" 10 (Bcounter.value c);
  List.iter
    (fun (r, n) ->
      Alcotest.(check int) (r ^ " share") n (Bcounter.local_rights c r))
    shares;
  Alcotest.(check bool) "uncapped" false (Bcounter.capped c);
  Alcotest.(check (option string)) "audit clean" None (Bcounter.audit c)

let test_escrow_seed_capped () =
  let c =
    apply_all Bcounter.empty
      (Escrow.seed
         ~shares:[ ("r1", 4) ]
         ~value:4 ~cap:10
         ~hshares:[ ("r1", 2); ("r2", 2); ("r3", 2) ]
         ())
  in
  Alcotest.(check bool) "capped" true (Bcounter.capped c);
  Alcotest.(check int) "cap" 10 (Bcounter.granted c);
  Alcotest.(check int) "r1 headroom" 2 (Bcounter.local_headroom c "r1");
  Alcotest.(check int) "r2 headroom" 2 (Bcounter.local_headroom c "r2");
  Alcotest.(check int) "r1 rights" 4 (Bcounter.local_rights c "r1");
  Alcotest.(check (option string)) "audit clean" None (Bcounter.audit c)

let test_escrow_tick_migration () =
  (* all rights at r1; r2 publishes demand; r1's tick ships toward it,
     then hysteresis stops the flow (cooldown, then no fresh demand) *)
  let c = apply_all Bcounter.empty (Escrow.seed ~shares:[ ("r1", 12) ] ~value:12 ()) in
  let c = Bcounter.apply c (Bcounter.prepare_demand c ~rep:"r2" 6) in
  let mgr = Escrow.create ~rep:"r1" () in
  let ops = Escrow.tick mgr ~now:0.0 ~key:"k" c in
  Alcotest.(check bool) "tick ships rights" true (ops <> []);
  let c = apply_all c ops in
  Alcotest.(check bool) "r2 received rights" true
    (Bcounter.local_rights c "r2" > 0);
  Alcotest.(check (option string)) "audit clean after migration" None
    (Bcounter.audit c);
  (* an immediate re-tick is inside the cooldown: nothing more ships *)
  Alcotest.(check bool) "cooldown suppresses re-ship" true
    (Escrow.tick mgr ~now:1.0 ~key:"k" c = []);
  (* demand gone quiet: the EWMA decays and no deficit re-opens, so
     rights don't ping-pong back and forth *)
  let c = ref c in
  for i = 1 to 5 do
    let ops = Escrow.tick mgr ~now:(float_of_int i *. 1000.0) ~key:"k" !c in
    Alcotest.(check bool)
      (Printf.sprintf "quiet tick %d ships nothing" i)
      true (ops = []);
    c := apply_all !c ops
  done

let test_escrow_forecast_prewarm () =
  (* no observed demand at all — the forecast alone must move rights
     toward the predicted-hot replica on the first tick *)
  let c = apply_all Bcounter.empty (Escrow.seed ~shares:[ ("r1", 12) ] ~value:12 ()) in
  let mgr = Escrow.create ~rep:"r1" () in
  Escrow.forecast mgr ~key:"k" [ ("r2", 3.0); ("r1", 0.1) ];
  let ops = Escrow.tick mgr ~now:0.0 ~key:"k" c in
  let c' = apply_all c ops in
  Alcotest.(check bool) "forecast moves rights preemptively" true
    (Bcounter.local_rights c' "r2" > 0);
  Alcotest.(check (option string)) "audit clean" None (Bcounter.audit c');
  (* without the forecast the same tick ships nothing *)
  let cold = Escrow.create ~rep:"r1" () in
  Alcotest.(check bool) "no forecast, no movement" true
    (Escrow.tick cold ~now:0.0 ~key:"k" c = [])

let test_escrow_publishes_demand () =
  (* note_dec buffers attempts; the next tick publishes them as one
     advisory Demand op so peers can difference the ledger *)
  let c = apply_all Bcounter.empty (Escrow.seed ~shares:[ ("r1", 4) ] ~value:4 ()) in
  let mgr = Escrow.create ~rep:"r2" () in
  Escrow.note_dec mgr ~key:"k" 3;
  Escrow.note_dec mgr ~key:"k" 2;
  let ops = Escrow.tick mgr ~now:0.0 ~key:"k" c in
  let c = apply_all c ops in
  Alcotest.(check int) "buffered attempts published" 5
    (Bcounter.local_demand c "r2");
  (* drained: a second tick has nothing left to publish *)
  let c' = apply_all c (Escrow.tick mgr ~now:1000.0 ~key:"k" c) in
  Alcotest.(check int) "pending drained" 5 (Bcounter.local_demand c' "r2")

let () =
  Alcotest.run "ipa_runtime"
    [
      ( "local",
        [
          Alcotest.test_case "executes and replicates" `Quick
            test_local_executes_and_replicates;
          Alcotest.test_case "region independent" `Quick
            test_local_latency_independent_of_region;
        ] );
      ( "strong",
        [
          Alcotest.test_case "remote write pays rtt" `Quick
            test_strong_remote_write_pays_rtt;
          Alcotest.test_case "primary write local" `Quick
            test_strong_primary_write_is_local;
          Alcotest.test_case "read local" `Quick test_strong_read_is_local;
          Alcotest.test_case "write lands at primary" `Quick
            test_strong_write_lands_at_primary;
        ] );
      ( "indigo",
        [
          Alcotest.test_case "first use local" `Quick
            test_indigo_first_use_is_local;
          Alcotest.test_case "exclusive migration" `Quick
            test_indigo_exclusive_migration_pays_rtt;
          Alcotest.test_case "shared stays" `Quick
            test_indigo_shared_reservations_stay;
          Alcotest.test_case "exclusive revokes shares" `Quick
            test_indigo_exclusive_revokes_shares;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "routes flagged ops" `Quick
            test_hybrid_routes_flagged_ops;
          Alcotest.test_case "forces exclusive" `Quick
            test_hybrid_forces_exclusive;
        ] );
      ( "failures",
        [
          Alcotest.test_case "local reroutes" `Quick test_fail_local_reroutes;
          Alcotest.test_case "strong primary down" `Quick
            test_fail_strong_primary_down;
          Alcotest.test_case "indigo holder down" `Quick
            test_fail_indigo_holder_down;
          Alcotest.test_case "recovery" `Quick test_fail_recovery;
        ] );
      ( "service model",
        [
          Alcotest.test_case "scales with updates" `Quick
            test_service_scales_with_updates;
          Alcotest.test_case "queueing under load" `Quick
            test_queueing_under_load;
        ] );
      ( "driver",
        [
          Alcotest.test_case "closed loop" `Quick test_driver_closed_loop;
          Alcotest.test_case "only region" `Quick test_driver_only_region;
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "replicas converge" `Quick
            test_driver_replicas_converge;
        ] );
      ( "faulty network",
        [
          Testutil.seeded_case "loss + duplication" `Quick ~default:31
            test_converges_under_loss_and_duplication;
          Testutil.seeded_case "partition heals" `Quick ~default:37
            test_converges_across_partition;
          Testutil.seeded_case "deterministic" `Quick ~default:41
            test_faulty_run_deterministic;
          Testutil.seeded_case "delivery metrics" `Quick ~default:43
            test_delivery_metrics_populated;
        ] );
      ( "escrow",
        [
          Alcotest.test_case "seed placement" `Quick
            test_escrow_seed_placement;
          Alcotest.test_case "seed capped" `Quick test_escrow_seed_capped;
          Alcotest.test_case "tick migrates, hysteresis settles" `Quick
            test_escrow_tick_migration;
          Alcotest.test_case "forecast prewarms" `Quick
            test_escrow_forecast_prewarm;
          Alcotest.test_case "demand publication" `Quick
            test_escrow_publishes_demand;
        ] );
    ]
