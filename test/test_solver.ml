(** Tests for [ipa_solver]: the CDCL SAT core, cardinality encodings and
    the ground-formula encoder. *)

open Ipa_logic
open Ipa_solver

(* ------------------------------------------------------------------ *)
(* SAT core                                                            *)
(* ------------------------------------------------------------------ *)

let is_sat r = r = Sat.Sat

let test_sat_trivial () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Alcotest.(check bool) "unit sat" true (is_sat (Sat.solve s));
  Alcotest.(check bool) "model" true (Sat.model_value s a)

let test_sat_contradiction () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ -a ];
  Alcotest.(check bool) "unsat" false (is_sat (Sat.solve s))

let test_sat_empty_clause () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Sat.add_clause s [];
  Alcotest.(check bool) "empty clause unsat" false (is_sat (Sat.solve s))

let test_sat_no_clauses () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Alcotest.(check bool) "vacuous sat" true (is_sat (Sat.solve s))

let test_sat_implication_chain () =
  (* x1 -> x2 -> ... -> xn, x1, ¬xn : unsat *)
  let s = Sat.create () in
  let n = 50 in
  let vars = Array.init n (fun _ -> Sat.new_var s) in
  for i = 0 to n - 2 do
    Sat.add_clause s [ -vars.(i); vars.(i + 1) ]
  done;
  Sat.add_clause s [ vars.(0) ];
  Sat.add_clause s [ -vars.(n - 1) ];
  Alcotest.(check bool) "chain unsat" false (is_sat (Sat.solve s))

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance *)
  let s = Sat.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.new_var s)) in
  for i = 0 to 2 do
    Sat.add_clause s [ p.(i).(0); p.(i).(1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" false (is_sat (Sat.solve s))

let test_sat_incremental () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Alcotest.(check bool) "sat 1" true (is_sat (Sat.solve s));
  Sat.reset s;
  Sat.add_clause s [ -a ];
  Alcotest.(check bool) "sat 2" true (is_sat (Sat.solve s));
  Alcotest.(check bool) "b forced" true (Sat.model_value s b);
  Sat.reset s;
  Sat.add_clause s [ -b ];
  Alcotest.(check bool) "unsat 3" false (is_sat (Sat.solve s))

(* brute-force reference solver *)
let brute_force nvars clauses =
  let rec go v (assign : bool array) =
    if v > nvars then
      List.for_all
        (fun c ->
          List.exists
            (fun l -> if l > 0 then assign.(l) else not assign.(-l))
            c)
        clauses
    else (
      assign.(v) <- true;
      if go (v + 1) assign then true
      else begin
        assign.(v) <- false;
        go (v + 1) assign
      end)
  in
  go 1 (Array.make (nvars + 1) false)

let prop_sat_matches_bruteforce =
  QCheck.Test.make ~name:"CDCL matches brute force on random 3-CNF"
    ~count:300
    QCheck.(
      make
        Gen.(
          let nvars = 8 in
          let gen_lit =
            map2
              (fun v s -> if s then v + 1 else -(v + 1))
              (int_bound (nvars - 1)) bool
          in
          let gen_clause = list_size (int_range 1 3) gen_lit in
          map (fun cs -> (nvars, cs)) (list_size (int_range 1 30) gen_clause)))
    (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      is_sat (Sat.solve s) = brute_force nvars clauses)

let prop_sat_model_satisfies =
  QCheck.Test.make ~name:"returned model satisfies all clauses" ~count:300
    QCheck.(
      make
        Gen.(
          let nvars = 10 in
          let gen_lit =
            map2
              (fun v s -> if s then v + 1 else -(v + 1))
              (int_bound (nvars - 1)) bool
          in
          let gen_clause = list_size (int_range 1 4) gen_lit in
          map (fun cs -> (nvars, cs)) (list_size (int_range 1 40) gen_clause)))
    (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      match Sat.solve s with
      | Unsat -> true
      | Sat ->
          List.for_all
            (fun c -> List.exists (fun l -> Sat.model_value s l) c)
            clauses)

(* ------------------------------------------------------------------ *)
(* Cardinality (totalizer)                                             *)
(* ------------------------------------------------------------------ *)

(* exhaustively check at_least over n inputs for every pattern and k *)
let test_at_least_exhaustive () =
  for n = 1 to 5 do
    for pattern = 0 to (1 lsl n) - 1 do
      let popcount =
        let rec go p acc = if p = 0 then acc else go (p lsr 1) (acc + (p land 1)) in
        go pattern 0
      in
      for k = 0 to n + 1 do
        let s = Sat.create () in
        let inputs = List.init n (fun _ -> Sat.new_var s) in
        (* pin the pattern *)
        List.iteri
          (fun i l ->
            if pattern land (1 lsl i) <> 0 then Sat.add_clause s [ l ]
            else Sat.add_clause s [ -l ])
          inputs;
        let z = Cnf.at_least s inputs k in
        Sat.add_clause s [ z ];
        let expect = popcount >= k in
        if is_sat (Sat.solve s) <> expect then
          Alcotest.failf "at_least n=%d pattern=%d k=%d: expected %b" n pattern
            k expect
      done
    done
  done

let test_at_least_negated () =
  (* the equivalence must hold under negation too: ¬(≥k) ⇔ (< k) *)
  for n = 1 to 4 do
    for pattern = 0 to (1 lsl n) - 1 do
      let popcount =
        let rec go p acc = if p = 0 then acc else go (p lsr 1) (acc + (p land 1)) in
        go pattern 0
      in
      for k = 0 to n + 1 do
        let s = Sat.create () in
        let inputs = List.init n (fun _ -> Sat.new_var s) in
        List.iteri
          (fun i l ->
            if pattern land (1 lsl i) <> 0 then Sat.add_clause s [ l ]
            else Sat.add_clause s [ -l ])
          inputs;
        let z = Cnf.at_least s inputs k in
        Sat.add_clause s [ -z ];
        let expect = popcount < k in
        if is_sat (Sat.solve s) <> expect then
          Alcotest.failf "neg at_least n=%d pattern=%d k=%d: expected %b" n
            pattern k expect
      done
    done
  done

let test_gates () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  let z = Cnf.gate_and s [ a; b ] in
  Sat.add_clause s [ z ];
  Alcotest.(check bool) "and gate sat" true (is_sat (Sat.solve s));
  Alcotest.(check bool) "a true" true (Sat.model_value s a);
  Alcotest.(check bool) "b true" true (Sat.model_value s b);
  let s2 = Sat.create () in
  let a2 = Sat.new_var s2 and b2 = Sat.new_var s2 in
  let z2 = Cnf.gate_or s2 [ a2; b2 ] in
  Sat.add_clause s2 [ -z2 ];
  Sat.add_clause s2 [ a2 ];
  Alcotest.(check bool) "neg or gate with a forced" false (is_sat (Sat.solve s2))

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

let sg : Ground.signature =
  {
    pred_sorts =
      [
        ("player", [ "Player" ]);
        ("tournament", [ "Tournament" ]);
        ("enrolled", [ "Player"; "Tournament" ]);
      ];
    nfun_sorts = [ ("stock", [ "Item" ]) ];
  }

let dom : Ground.domain =
  [
    ("Player", [ "p1"; "p2"; "p3" ]);
    ("Tournament", [ "t1" ]);
    ("Item", [ "i1" ]);
  ]

let parse = Parser.parse_formula
let ground f = Ground.ground ~sg ~consts:[ ("Capacity", 2) ] ~dom f

let check_formula f =
  Encode.check ~sg ~consts:[ ("Capacity", 2) ] ~dom (parse f)

let test_encode_sat_model_evals_true () =
  let f =
    "(forall(Player:p, Tournament:t) :- enrolled(p,t) => player(p) and \
     tournament(t)) and enrolled('p1,'t1)"
  in
  match check_formula f with
  | `Unsat -> Alcotest.fail "should be satisfiable"
  | `Sat (batom, bnum) ->
      Alcotest.(check bool) "model satisfies ground formula" true
        (Ground.eval ~batom ~bnum (ground (parse f)));
      Alcotest.(check bool) "p1 enrolled in model" true
        (batom { Ground.gpred = "enrolled"; gargs = [ "p1"; "t1" ] });
      Alcotest.(check bool) "p1 is player in model" true
        (batom { Ground.gpred = "player"; gargs = [ "p1" ] })

let test_encode_unsat () =
  let f = "player('p1) and not player('p1)" in
  Alcotest.(check bool) "contradiction unsat" true (check_formula f = `Unsat)

let test_encode_cardinality () =
  (* 3 players all enrolled but capacity 2: unsat *)
  let f =
    "(forall(Tournament:t) :- #enrolled(*,t) <= Capacity) and \
     enrolled('p1,'t1) and enrolled('p2,'t1) and enrolled('p3,'t1)"
  in
  Alcotest.(check bool) "over capacity unsat" true (check_formula f = `Unsat);
  let g =
    "(forall(Tournament:t) :- #enrolled(*,t) <= Capacity) and \
     enrolled('p1,'t1) and enrolled('p2,'t1)"
  in
  Alcotest.(check bool) "at capacity sat" true (check_formula g <> `Unsat)

let test_encode_cardinality_negated () =
  (* not(#enrolled <= 1) with only p1 enrollable... satisfiable by
     enrolling two players *)
  let f = "not (#enrolled(*,'t1) <= 1)" in
  match check_formula f with
  | `Unsat -> Alcotest.fail "negated cardinality should be satisfiable"
  | `Sat (batom, _) ->
      let count =
        List.length
          (List.filter
             (fun p -> batom { Ground.gpred = "enrolled"; gargs = [ p; "t1" ] })
             [ "p1"; "p2"; "p3" ])
      in
      Alcotest.(check bool) "at least two enrolled" true (count >= 2)

let test_encode_numeric () =
  let f = "stock('i1) - 3 >= 0 and stock('i1) <= 4" in
  match check_formula f with
  | `Unsat -> Alcotest.fail "stock in [3,4] should be satisfiable"
  | `Sat (_, bnum) ->
      let v = bnum { Ground.gfun = "stock"; gnargs = [ "i1" ] } in
      Alcotest.(check bool) "stock between 3 and 4" true (v >= 3 && v <= 4)

let test_encode_numeric_unsat () =
  let f = "stock('i1) >= 5 and stock('i1) <= 4" in
  Alcotest.(check bool) "empty numeric interval" true (check_formula f = `Unsat)

let test_encode_numeric_bounds () =
  (* default bounds are [0,16]; a demand beyond is unsat *)
  let f = "stock('i1) >= 17" in
  Alcotest.(check bool) "beyond upper bound" true (check_formula f = `Unsat);
  let g = "stock('i1) < 0" in
  Alcotest.(check bool) "below lower bound" true (check_formula g = `Unsat)

let test_encode_eq_neq () =
  let f = "stock('i1) == 7" in
  (match check_formula f with
  | `Unsat -> Alcotest.fail "eq should be satisfiable"
  | `Sat (_, bnum) ->
      Alcotest.(check int) "stock exactly 7" 7
        (bnum { Ground.gfun = "stock"; gnargs = [ "i1" ] }));
  let g = "stock('i1) != 0 and stock('i1) <= 1" in
  match check_formula g with
  | `Unsat -> Alcotest.fail "neq should be satisfiable"
  | `Sat (_, bnum) ->
      Alcotest.(check int) "stock exactly 1" 1
        (bnum { Ground.gfun = "stock"; gnargs = [ "i1" ] })

let test_block_model_enumeration () =
  (* enumerate all models of "player(p1) or player(p2)" over 2 atoms *)
  let f =
    Ground.ground ~sg ~consts:[]
      ~dom:[ ("Player", [ "p1"; "p2" ]); ("Tournament", []); ("Item", []) ]
      (parse "player('p1) or player('p2)")
  in
  let ctx = Encode.create () in
  Encode.assert_formula ctx f;
  let atoms = Ground.atoms f in
  let rec enum acc =
    match Encode.solve ctx with
    | Sat ->
        let m = List.map (Encode.model_atom ctx) atoms in
        Encode.block_model ctx atoms;
        enum (m :: acc)
    | Unsat -> acc
  in
  let models = enum [] in
  Alcotest.(check int) "three models" 3 (List.length models)

let test_block_model_fresh_atom () =
  (* block_model over an atom the encoder has never seen: the atom gets
     a fresh variable reading false in the current model, so the
     blocking clause contains its positive literal and enumeration
     simply proceeds over the enlarged atom set *)
  let f =
    Ground.ground ~sg ~consts:[]
      ~dom:[ ("Player", [ "p1"; "p2" ]); ("Tournament", []); ("Item", []) ]
      (parse "player('p1) or player('p2)")
  in
  let ctx = Encode.create () in
  Encode.assert_formula ctx f;
  let fresh = { Ground.gpred = "tournament"; gargs = [ "t9" ] } in
  let atoms = Ground.atoms f @ [ fresh ] in
  (match Encode.solve ctx with
  | Sat -> Encode.block_model ctx atoms
  | Unsat -> Alcotest.fail "disjunction should be satisfiable");
  (* the solver stays usable and the next model differs on the atom set *)
  Alcotest.(check bool) "still satisfiable after blocking" true
    (Encode.solve ctx = Sat);
  (* full enumeration terminates with 3 (p1,p2)-models x 2 fresh values *)
  let rec enum n =
    match Encode.solve ctx with
    | Sat ->
        Encode.block_model ctx atoms;
        enum (n + 1)
    | Unsat -> n
  in
  Alcotest.(check int) "six models over enlarged atom set" 6 (1 + enum 0)

let test_sat_learnt_db_reduction () =
  (* a pigeonhole instance hard enough to learn past the initial DB cap:
     the verdict stays correct and the reduction counters are sane *)
  let n = 7 in
  let s = Sat.create () in
  let p =
    Array.init n (fun _ -> Array.init (n - 1) (fun _ -> Sat.new_var s))
  in
  for i = 0 to n - 1 do
    Sat.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to n - 2 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "pigeonhole unsat" true (Sat.solve s = Sat.Unsat);
  let st = Sat.stats s in
  Alcotest.(check bool) "conflicts counted" true (st.Sat.n_conflicts > 0);
  Alcotest.(check bool) "clauses learnt" true (st.Sat.n_learnts > 0);
  Alcotest.(check bool) "learnt DB was reduced" true (st.Sat.n_removed > 0);
  Alcotest.(check bool) "removed at most created" true
    (st.Sat.n_removed < st.Sat.n_learnts)

(* property: encoder verdict matches direct evaluation search over small
   boolean-only formulas *)
let gen_bool_formula : Ast.formula QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_atom =
    oneofl
      [
        Ast.Atom ("player", [ Ast.Const "p1" ]);
        Ast.Atom ("player", [ Ast.Const "p2" ]);
        Ast.Atom ("tournament", [ Ast.Const "t1" ]);
        Ast.Atom ("enrolled", [ Ast.Const "p1"; Ast.Const "t1" ]);
      ]
  in
  fix
    (fun self n ->
      if n = 0 then gen_atom
      else
        frequency
          [
            (2, gen_atom);
            (2, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Ast.Implies (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Ast.Iff (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun a -> Ast.Not a) (self (n - 1)));
          ])
    6

let prop_encode_matches_eval =
  QCheck.Test.make ~name:"solver verdict matches exhaustive evaluation"
    ~count:200
    (QCheck.make gen_bool_formula ~print:Pp.formula_to_string)
    (fun f ->
      let g = ground f in
      let atoms = Ground.atoms g in
      let n = List.length atoms in
      let exhaustive_sat =
        let rec go i (assign : (Ground.gatom * bool) list) =
          if i = n then
            Ground.eval
              ~batom:(fun a -> List.assoc a assign)
              ~bnum:(fun _ -> 0)
              g
          else
            let a = List.nth atoms i in
            go (i + 1) ((a, true) :: assign)
            || go (i + 1) ((a, false) :: assign)
        in
        go 0 []
      in
      let solver_sat =
        match Encode.check ~sg ~consts:[] ~dom f with
        | `Sat _ -> true
        | `Unsat -> false
      in
      exhaustive_sat = solver_sat)

(* random ground formulas with cardinality atoms: solver verdict matches
   exhaustive evaluation *)
let prop_cardinality_matches_eval =
  QCheck.Test.make ~name:"cardinality verdicts match exhaustive evaluation"
    ~count:150
    QCheck.(
      make
        Gen.(
          let gen_card_cmp =
            map2
              (fun op k ->
                Ast.Cmp
                  ( op,
                    Ast.Card ("enrolled", [ Ast.Star; Ast.Const "t1" ]),
                    Ast.Int k ))
              (oneofl [ Ast.Le; Ast.Lt; Ast.Ge; Ast.Gt; Ast.EqN; Ast.NeN ])
              (int_bound 4)
          in
          let gen_atom =
            oneof
              [
                gen_card_cmp;
                oneofl
                  [
                    Ast.Atom ("player", [ Ast.Const "p1" ]);
                    Ast.Atom ("enrolled", [ Ast.Const "p1"; Ast.Const "t1" ]);
                    Ast.Atom ("enrolled", [ Ast.Const "p2"; Ast.Const "t1" ]);
                  ];
              ]
          in
          fix
            (fun self n ->
              if n = 0 then gen_atom
              else
                frequency
                  [
                    (3, gen_atom);
                    (2, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
                    (2, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
                    (1, map (fun a -> Ast.Not a) (self (n - 1)));
                  ])
            4))
    (fun f ->
      let g = ground f in
      let atoms = Ground.atoms g in
      let n = List.length atoms in
      let exhaustive =
        let rec go i assign =
          if i = n then
            Ground.eval ~batom:(fun a -> List.assoc a assign) ~bnum:(fun _ -> 0) g
          else
            let a = List.nth atoms i in
            go (i + 1) ((a, true) :: assign) || go (i + 1) ((a, false) :: assign)
        in
        go 0 []
      in
      let solver =
        match Encode.check ~sg ~consts:[ ("Capacity", 2) ] ~dom f with
        | `Sat _ -> true
        | `Unsat -> false
      in
      exhaustive = solver)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sat_matches_bruteforce; prop_sat_model_satisfies;
      prop_encode_matches_eval; prop_cardinality_matches_eval ]

let () =
  Alcotest.run "ipa_solver"
    [
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "contradiction" `Quick test_sat_contradiction;
          Alcotest.test_case "empty clause" `Quick test_sat_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_sat_no_clauses;
          Alcotest.test_case "implication chain" `Quick
            test_sat_implication_chain;
          Alcotest.test_case "pigeonhole 3-2" `Quick test_sat_pigeonhole_3_2;
          Alcotest.test_case "incremental" `Quick test_sat_incremental;
          Alcotest.test_case "learnt DB reduction" `Quick
            test_sat_learnt_db_reduction;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "at_least exhaustive" `Quick
            test_at_least_exhaustive;
          Alcotest.test_case "at_least negated" `Quick test_at_least_negated;
          Alcotest.test_case "gates" `Quick test_gates;
        ] );
      ( "encode",
        [
          Alcotest.test_case "sat model evaluates true" `Quick
            test_encode_sat_model_evals_true;
          Alcotest.test_case "unsat" `Quick test_encode_unsat;
          Alcotest.test_case "cardinality" `Quick test_encode_cardinality;
          Alcotest.test_case "cardinality negated" `Quick
            test_encode_cardinality_negated;
          Alcotest.test_case "numeric" `Quick test_encode_numeric;
          Alcotest.test_case "numeric unsat" `Quick test_encode_numeric_unsat;
          Alcotest.test_case "numeric bounds" `Quick test_encode_numeric_bounds;
          Alcotest.test_case "eq/neq" `Quick test_encode_eq_neq;
          Alcotest.test_case "model enumeration" `Quick
            test_block_model_enumeration;
          Alcotest.test_case "block_model on fresh atom" `Quick
            test_block_model_fresh_atom;
        ] );
      ("properties", qcheck_tests);
    ]
