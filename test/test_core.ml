(** Tests for [ipa_core]: conflict detection, repair generation,
    compensations, classification and the full Algorithm 1 loop. *)

open Ipa_logic
open Ipa_spec
open Ipa_core

(* A minimal referential-integrity application (Figure 2's essence). *)
let mini_src =
  {|
app Mini
sort P
sort T
predicate p(P)
predicate t(T)
predicate e(P, T)
invariant ref: forall(P:x, T:y) :- e(x,y) => p(x) and t(y)
rule p: add-wins
rule t: add-wins
rule e: add-wins
operation add_p(P:x)
  p(x) := true
operation rem_p(P:x)
  p(x) := false
operation add_t(T:y)
  t(y) := true
operation rem_t(T:y)
  t(y) := false
operation enroll(P:x, T:y)
  e(x, y) := true
operation disenroll(P:x, T:y)
  e(x, y) := false
|}

let mini () = Spec_parser.parse_string mini_src
let op spec name = Detect.aop_of (Option.get (Types.find_op spec name))

(* ------------------------------------------------------------------ *)
(* Pairctx                                                             *)
(* ------------------------------------------------------------------ *)

let test_partitions () =
  let count n = List.length (Pairctx.partitions (List.init n Fun.id)) in
  Alcotest.(check int) "B(0)=1" 1 (count 0);
  Alcotest.(check int) "B(1)=1" 1 (count 1);
  Alcotest.(check int) "B(2)=2" 2 (count 2);
  Alcotest.(check int) "B(3)=5" 5 (count 3);
  Alcotest.(check int) "B(4)=15" 15 (count 4)

let test_unifications () =
  let spec = mini () in
  let o1 = op spec "add_p" and o2 = op spec "rem_p" in
  let us = Pairctx.unifications spec o1.Detect.cur o2.Detect.cur in
  (* two same-sorted parameters: equal or distinct *)
  Alcotest.(check int) "two cases" 2 (List.length us);
  (* every case binds both parameters *)
  List.iter
    (fun (u : Pairctx.unification) ->
      Alcotest.(check int) "binding1" 1 (List.length u.binding1);
      Alcotest.(check int) "binding2" 1 (List.length u.binding2))
    us

let test_unification_domains () =
  let spec = mini () in
  let o1 = op spec "enroll" and o2 = op spec "rem_t" in
  let us = Pairctx.unifications spec o1.Detect.cur o2.Detect.cur in
  (* P params: 1 (x of enroll); T params: 2 (y, y') -> 2 partitions *)
  Alcotest.(check int) "two cases" 2 (List.length us);
  List.iter
    (fun (u : Pairctx.unification) ->
      (* each sort's domain has the blocks plus one background element *)
      let pdom = List.assoc "P" u.dom and tdom = List.assoc "T" u.dom in
      Alcotest.(check int) "P domain" 2 (List.length pdom);
      Alcotest.(check bool) "T domain 2 or 3" true
        (List.length tdom = 2 || List.length tdom = 3))
    us

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)
(* ------------------------------------------------------------------ *)

let dom : Ground.domain = [ ("P", [ "a"; "b" ]); ("T", [ "u" ]) ]

let test_ground_writes_wildcard () =
  let spec = mini () in
  let o =
    Types.operation "clear" [ { Ast.vname = "y"; vsort = "T" } ]
      [ Types.set_false "e" [ Ast.Star; Ast.Var "y" ] ]
  in
  let w = Effects.ground_writes spec dom o [ ("y", "u") ] in
  Alcotest.(check int) "two ground writes" 2
    (List.length w.Effects.bool_writes);
  Alcotest.(check bool) "both false" true
    (List.for_all (fun (_, v) -> not v) w.Effects.bool_writes)

let test_ground_writes_last_wins () =
  let spec = mini () in
  let o =
    Types.operation "flip" [ { Ast.vname = "x"; vsort = "P" } ]
      [ Types.set_true "p" [ Ast.Var "x" ]; Types.set_false "p" [ Ast.Var "x" ] ]
  in
  let w = Effects.ground_writes spec dom o [ ("x", "a") ] in
  Alcotest.(check int) "one write" 1 (List.length w.Effects.bool_writes);
  Alcotest.(check bool) "last wins" true
    (snd (List.hd w.Effects.bool_writes) = false)

let test_merge_add_wins () =
  let spec = mini () in
  let ga = { Ground.gpred = "p"; gargs = [ "a" ] } in
  let w1 = { Effects.bool_writes = [ (ga, true) ]; num_writes = [] } in
  let w2 = { Effects.bool_writes = [ (ga, false) ]; num_writes = [] } in
  match Effects.merge_writes spec w1 w2 with
  | [ m ] ->
      Alcotest.(check bool) "add-wins resolves true" true
        (Effects.lookup_bool m ga = Some true)
  | ms -> Alcotest.failf "expected 1 outcome, got %d" (List.length ms)

let test_merge_lww_two_outcomes () =
  let spec = { (mini ()) with Types.rules = [] } (* no rules -> LWW *) in
  let ga = { Ground.gpred = "p"; gargs = [ "a" ] } in
  let w1 = { Effects.bool_writes = [ (ga, true) ]; num_writes = [] } in
  let w2 = { Effects.bool_writes = [ (ga, false) ]; num_writes = [] } in
  Alcotest.(check int) "two outcomes" 2
    (List.length (Effects.merge_writes spec w1 w2))

let test_merge_numeric_sums () =
  let spec = mini () in
  let gn = { Ground.gfun = "n"; gnargs = [ "a" ] } in
  let w1 = { Effects.bool_writes = []; num_writes = [ (gn, -1) ] } in
  let w2 = { Effects.bool_writes = []; num_writes = [ (gn, -2) ] } in
  match Effects.merge_writes spec w1 w2 with
  | [ m ] ->
      Alcotest.(check bool) "deltas sum" true
        (Effects.lookup_num m gn = Some (-3))
  | _ -> Alcotest.fail "expected single outcome"

let test_apply_writes_wp () =
  (* wp of e(a,u) := true wrt (e(a,u) => p(a) and t(u)) is p(a) and t(u) *)
  let sg : Ground.signature =
    {
      pred_sorts = [ ("p", [ "P" ]); ("t", [ "T" ]); ("e", [ "P"; "T" ]) ];
      nfun_sorts = [];
    }
  in
  let f =
    Parser.parse_formula "forall(P:x, T:y) :- e(x,y) => p(x) and t(y)"
  in
  let g = Ground.ground ~sg ~consts:[] ~dom:[ ("P", [ "a" ]); ("T", [ "u" ]) ] f in
  let w =
    {
      Effects.bool_writes = [ ({ Ground.gpred = "e"; gargs = [ "a"; "u" ] }, true) ];
      num_writes = [];
    }
  in
  let wp = Effects.apply_writes w g in
  (* must force p(a) and t(u) *)
  let eval pa tu =
    Ground.eval
      ~batom:(fun a ->
        match a.Ground.gpred with "p" -> pa | "t" -> tu | _ -> false)
      ~bnum:(fun _ -> 0)
      wp
  in
  Alcotest.(check bool) "needs both" true (eval true true);
  Alcotest.(check bool) "missing t" false (eval true false);
  Alcotest.(check bool) "missing p" false (eval false true)

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let test_detect_conflict_rem_t_enroll () =
  let spec = mini () in
  match Detect.check_pair spec (op spec "rem_t") (op spec "enroll") with
  | Detect.Conflict w ->
      Alcotest.(check (list string)) "violates ref" [ "ref" ] w.Detect.violated
  | Detect.Safe -> Alcotest.fail "expected conflict"

let test_detect_conflict_rem_p_enroll () =
  let spec = mini () in
  match Detect.check_pair spec (op spec "rem_p") (op spec "enroll") with
  | Detect.Conflict _ -> ()
  | Detect.Safe -> Alcotest.fail "expected conflict"

let test_detect_safe_pairs () =
  let spec = mini () in
  let safe a b =
    Alcotest.(check bool)
      (Fmt.str "%s/%s safe" a b)
      true
      (Detect.check_pair spec (op spec a) (op spec b) = Detect.Safe)
  in
  safe "add_p" "add_t";
  safe "add_p" "rem_p" (* add-wins absorbs the opposing write *);
  safe "enroll" "enroll";
  safe "enroll" "disenroll" (* add-wins on e *);
  safe "disenroll" "rem_t"

let test_detect_witness_shape () =
  let spec = mini () in
  match Detect.check_pair spec (op spec "rem_t") (op spec "enroll") with
  | Detect.Safe -> Alcotest.fail "expected conflict"
  | Detect.Conflict w ->
      (* pre-state is admissible: the enrolled player and tournament exist *)
      let find p args = List.assoc { Ground.gpred = p; gargs = args } w.Detect.pre_atoms in
      let t_elem =
        match w.Detect.writes1.Effects.bool_writes with
        | ({ Ground.gpred = "t"; gargs = [ e ] }, false) :: _ -> e
        | _ -> Alcotest.fail "rem_t should write t(y) := false"
      in
      Alcotest.(check bool) "tournament existed" true (find "t" [ t_elem ]);
      (* merged state removes it while keeping the enrollment *)
      Alcotest.(check bool) "merged removes tournament" true
        (Effects.lookup_bool w.Detect.merged
           { Ground.gpred = "t"; gargs = [ t_elem ] }
        = Some false)

let test_detect_rules_matter () =
  (* with rem-wins on e, enroll || disenroll merges to not-enrolled and
     stays safe; with add-wins on t, rem_t loses against a re-add *)
  let spec = mini () in
  let spec_rw =
    { spec with Types.rules = [ ("e", Types.Rem_wins); ("p", Types.Add_wins); ("t", Types.Add_wins) ] }
  in
  Alcotest.(check bool) "enroll/disenroll safe under rem-wins" true
    (Detect.check_pair spec_rw (op spec "enroll") (op spec "disenroll")
    = Detect.Safe)

let test_sequentially_safe () =
  let spec = mini () in
  Alcotest.(check bool) "enroll is sequentially safe" true
    (Detect.sequentially_safe spec (op spec "enroll"));
  (* a modification that removes the player while enrolling breaks
     sequential executions: base precondition admits states the modified
     effects then corrupt *)
  let enroll = op spec "enroll" in
  let bad_cur =
    {
      enroll.Detect.cur with
      Types.oeffects =
        enroll.Detect.cur.oeffects @ [ Types.set_false "p" [ Ast.Var "x" ] ];
    }
  in
  Alcotest.(check bool) "bad modification is not sequentially safe" false
    (Detect.sequentially_safe spec { enroll with Detect.cur = bad_cur });
  (* a restoring modification (Figure 2b) is sequentially safe *)
  let good_cur =
    {
      enroll.Detect.cur with
      Types.oeffects =
        enroll.Detect.cur.oeffects
        @ [ Types.set_true ~mode:Types.Touch "t" [ Ast.Var "y" ] ];
    }
  in
  Alcotest.(check bool) "restoring modification is sequentially safe" true
    (Detect.sequentially_safe spec { enroll with Detect.cur = good_cur })

let test_detect_numeric_self_conflict () =
  let ticket = Catalog.ticket () in
  let buy = op ticket "buy_ticket" in
  match Detect.check_pair ticket buy buy with
  | Detect.Conflict w ->
      Alcotest.(check (list string)) "oversell" [ "no_oversell" ]
        w.Detect.violated
  | Detect.Safe -> Alcotest.fail "concurrent buys must conflict"

let test_find_conflicting_pair () =
  let spec = mini () in
  let ops = List.map Detect.aop_of spec.Types.operations in
  match Detect.find_conflicting_pair spec ops with
  | Some (o1, o2, _) ->
      let names = (o1.Detect.cur.oname, o2.Detect.cur.oname) in
      Alcotest.(check bool) "a rem/enroll pair" true
        (List.mem names
           [ ("rem_p", "enroll"); ("rem_t", "enroll"); ("enroll", "rem_p"); ("enroll", "rem_t") ])
  | None -> Alcotest.fail "expected a conflicting pair"

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)
(* ------------------------------------------------------------------ *)

let test_repair_figure2b () =
  (* enroll extended with t(y) := true wins over rem_t under add-wins *)
  let spec = mini () in
  let sols = Repair.repair_conflicts spec (op spec "rem_t", op spec "enroll") in
  Alcotest.(check bool) "has solutions" true (sols <> []);
  let fig2b =
    List.exists
      (fun (s : Repair.solution) ->
        s.s_op = "enroll"
        && List.exists
             (fun (ae : Types.annotated_effect) ->
               ae.eff.epred = "t" && ae.eff.evalue = Types.Set true
               && ae.mode = Types.Touch)
             s.s_added)
      sols
  in
  Alcotest.(check bool) "Figure 2b solution found" true fig2b

let test_repair_figure2c_needs_rules () =
  (* clearing e( *, y) on rem_t requires rem-wins on e *)
  let spec = mini () in
  let sols =
    Repair.repair_conflicts ~search_rules:true spec
      (op spec "rem_t", op spec "enroll")
  in
  let fig2c =
    List.exists
      (fun (s : Repair.solution) ->
        s.s_op = "rem_t"
        && List.exists
             (fun (ae : Types.annotated_effect) ->
               ae.eff.epred = "e"
               && List.hd ae.eff.eargs = Ast.Star
               && ae.eff.evalue = Types.Set false)
             s.s_added
        && List.assoc_opt "e" s.s_rules = Some Types.Rem_wins)
      sols
  in
  Alcotest.(check bool) "Figure 2c solution found" true fig2c

let test_repair_solutions_are_safe () =
  let spec = mini () in
  let sols = Repair.repair_conflicts spec (op spec "rem_p", op spec "enroll") in
  Alcotest.(check bool) "has solutions" true (sols <> []);
  List.iter
    (fun (s : Repair.solution) ->
      let p1, p2 = s.s_pair in
      let spec' = { spec with Types.rules = s.s_rules } in
      Alcotest.(check bool) "pair safe" true
        (Detect.check_pair spec' p1 p2 = Detect.Safe);
      Alcotest.(check bool) "seq safe 1" true
        (Detect.sequentially_safe spec' p1);
      Alcotest.(check bool) "seq safe 2" true
        (Detect.sequentially_safe spec' p2))
    sols

let test_repair_minimality () =
  let spec = mini () in
  let sols = Repair.repair_conflicts spec (op spec "rem_t", op spec "enroll") in
  (* no solution strictly contains another solution on the same target *)
  List.iter
    (fun (s : Repair.solution) ->
      List.iter
        (fun (s' : Repair.solution) ->
          if s != s' && s.Repair.s_target = s'.Repair.s_target then
            Alcotest.(check bool) "not a strict superset" false
              (List.length s.s_added > List.length s'.s_added
              && List.for_all (fun e -> List.mem e s.s_added) s'.s_added))
        sols)
    sols

let test_repair_none_for_numeric () =
  (* numeric conflicts admit no boolean-effect repair *)
  let ticket = Catalog.ticket () in
  let buy = op ticket "buy_ticket" in
  let sols = Repair.repair_conflicts ticket (buy, buy) in
  Alcotest.(check int) "no boolean repair" 0 (List.length sols)

let test_pick_policies () =
  let spec = mini () in
  let sols = Repair.repair_conflicts spec (op spec "rem_t", op spec "enroll") in
  (match Repair.pick Repair.Fewest_effects sols with
  | Some s ->
      Alcotest.(check int) "single extra effect" 1 (List.length s.s_added)
  | None -> Alcotest.fail "expected a pick");
  (match Repair.pick (Repair.Prefer_op "enroll") sols with
  | Some s -> Alcotest.(check string) "prefers enroll" "enroll" s.s_op
  | None -> Alcotest.fail "expected a pick");
  Alcotest.(check bool) "empty pick" true (Repair.pick Repair.Fewest_effects [] = None)

(* a disjunction invariant (Table 1's last row): a task must be
   assigned or archived; IPA keeps the disjunction true *)
let disj_src =
  {|
app Tasks
sort Task
sort User
predicate task(Task)
predicate assigned(Task, User)
predicate archived(Task)
invariant disj: forall(Task:k) :- task(k) => (#assigned(k, *) >= 1 or archived(k))
rule task: add-wins
rule assigned: add-wins
rule archived: add-wins
operation create(Task:k, User:u)
  task(k) := true
  assigned(k, u) := true
operation unassign(Task:k, User:u)
  assigned(k, u) := false
operation archive(Task:k)
  archived(k) := true
|}

let test_repair_disjunction () =
  let spec = Spec_parser.parse_string disj_src in
  (* unassigning the last assignee of a live task concurrently with ...
     actually even sequentially-unsafe alone; the conflicting pair is
     create || unassign: the unassign clears the assignment the create
     relies on *)
  let conflicts = Ipa.diagnose spec in
  Alcotest.(check bool) "disjunction conflict found" true (conflicts <> []);
  let r = Ipa.run ~search_rules:true spec in
  (* every conflict is repaired or compensated, none flagged *)
  Alcotest.(check (list (pair string string))) "no flagged pairs" []
    (Ipa.flagged_pairs r);
  Alcotest.(check int) "patched spec clean" 0
    (List.length (Ipa.diagnose (Ipa.patched_spec r)))

(* ------------------------------------------------------------------ *)
(* Compensation                                                        *)
(* ------------------------------------------------------------------ *)

let test_compensation_restock () =
  let ticket = Catalog.ticket () in
  let comps = Compensation.synthesize ticket [ "no_oversell" ] in
  match comps with
  | [ c ] ->
      Alcotest.(check string) "for no_oversell" "no_oversell" c.comp_invariant;
      Alcotest.(check (list string)) "triggered by buys" [ "buy_ticket" ]
        c.comp_triggers;
      (match c.comp_kind with
      | Compensation.Restock { nfun; delta } ->
          Alcotest.(check string) "function" "available" nfun;
          Alcotest.(check int) "positive repair" 1 delta
      | _ -> Alcotest.fail "expected Restock")
  | _ -> Alcotest.failf "expected one compensation, got %d" (List.length comps)

let test_compensation_remove_excess () =
  let tournament = Catalog.tournament () in
  let comps = Compensation.synthesize tournament [ "capacity" ] in
  match comps with
  | [ c ] -> (
      Alcotest.(check (list string)) "triggered by enroll" [ "enroll" ]
        c.comp_triggers;
      match c.comp_kind with
      | Compensation.Remove_excess { pred; _ } ->
          Alcotest.(check string) "over enrolled" "enrolled" pred
      | _ -> Alcotest.fail "expected Remove_excess")
  | _ -> Alcotest.fail "expected one compensation"

let test_compensation_covers () =
  let ticket = Catalog.ticket () in
  let comps = Compensation.synthesize ticket [ "no_oversell" ] in
  Alcotest.(check bool) "covers oversell" true
    (Compensation.covers comps [ "no_oversell" ]);
  Alcotest.(check bool) "does not cover others" false
    (Compensation.covers comps [ "no_oversell"; "ghost" ])

let test_compensation_not_for_boolean () =
  let spec = mini () in
  Alcotest.(check int) "no compensation for ref integrity" 0
    (List.length (Compensation.synthesize spec [ "ref" ]))

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let has cls spec = List.mem cls (Classify.app_classes spec)

let test_classify_tournament () =
  let s = Catalog.tournament () in
  Alcotest.(check bool) "ref integrity" true (has Classify.Referential_integrity s);
  Alcotest.(check bool) "aggregation constraint" true
    (has Classify.Aggregation_constraint s);
  Alcotest.(check bool) "aggregation inclusion" true
    (has Classify.Aggregation_inclusion s);
  Alcotest.(check bool) "disjunction" true (has Classify.Disjunction s);
  Alcotest.(check bool) "unique ids (entity keys)" true (has Classify.Unique_id s);
  Alcotest.(check bool) "no sequential ids" false (has Classify.Sequential_id s)

let test_classify_ticket () =
  let s = Catalog.ticket () in
  Alcotest.(check bool) "numeric" true (has Classify.Numeric_inv s);
  Alcotest.(check bool) "no ref integrity" false
    (has Classify.Referential_integrity s)

let test_classify_tpcw () =
  let s = Catalog.tpcw () in
  Alcotest.(check bool) "sequential" true (has Classify.Sequential_id s);
  Alcotest.(check bool) "unique" true (has Classify.Unique_id s);
  Alcotest.(check bool) "numeric" true (has Classify.Numeric_inv s);
  Alcotest.(check bool) "ref integrity" true
    (has Classify.Referential_integrity s)

let test_classify_twitter () =
  let s = Catalog.twitter () in
  Alcotest.(check bool) "ref integrity" true (has Classify.Referential_integrity s);
  Alcotest.(check bool) "no numeric" false (has Classify.Numeric_inv s);
  Alcotest.(check bool) "no disjunction" false (has Classify.Disjunction s)

let test_classify_support_table () =
  Alcotest.(check bool) "sequential unsupported" true
    (Classify.ipa_support Classify.Sequential_id = Classify.Unsupported);
  Alcotest.(check bool) "numeric via compensation" true
    (Classify.ipa_support Classify.Numeric_inv = Classify.Via_compensation);
  Alcotest.(check bool) "ref integrity direct" true
    (Classify.ipa_support Classify.Referential_integrity = Classify.Direct);
  Alcotest.(check bool) "unique is I-confluent" true
    (Classify.i_confluent Classify.Unique_id);
  Alcotest.(check bool) "ref integrity is not I-confluent" false
    (Classify.i_confluent Classify.Referential_integrity)

(* ------------------------------------------------------------------ *)
(* Full loop (Algorithm 1)                                             *)
(* ------------------------------------------------------------------ *)

let test_ipa_run_mini () =
  let spec = mini () in
  let r = Ipa.run spec in
  Alcotest.(check (list (pair string string))) "nothing flagged" []
    (Ipa.flagged_pairs r);
  (* enroll must have been reinforced with p and t restores *)
  let enroll =
    List.find
      (fun (o : Detect.aop) -> o.Detect.cur.oname = "enroll")
      r.Ipa.final_ops
  in
  let added_preds =
    List.filter_map
      (fun (ae : Types.annotated_effect) ->
        if List.mem ae enroll.Detect.base.oeffects then None
        else Some ae.eff.epred)
      enroll.Detect.cur.oeffects
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "restores p and t" [ "p"; "t" ] added_preds;
  (* the patched spec has no remaining conflicts *)
  let patched = Ipa.patched_spec r in
  Alcotest.(check int) "patched spec is conflict-free" 0
    (List.length (Ipa.diagnose patched))

let test_ipa_run_ticket () =
  let r = Ipa.run (Catalog.ticket ()) in
  let comps = Ipa.compensations r in
  Alcotest.(check bool) "ticket uses compensations" true (comps <> []);
  Alcotest.(check bool) "restock compensation present" true
    (List.exists
       (fun (c : Compensation.t) ->
         match c.comp_kind with
         | Compensation.Restock { nfun = "available"; _ } -> true
         | _ -> false)
       comps);
  Alcotest.(check (list (pair string string))) "nothing flagged" []
    (Ipa.flagged_pairs r)

let test_ipa_run_terminates () =
  let spec = mini () in
  let r = Ipa.run ~max_iterations:3 spec in
  Alcotest.(check bool) "bounded iterations" true (r.Ipa.iterations <= 3)

(* the full Tournament analysis reproduces Figure 3 (slow: ~30s) *)
let test_ipa_run_tournament_figure3 () =
  let spec = Catalog.tournament () in
  let r = Ipa.run spec in
  let added_of name =
    let o =
      List.find (fun (o : Detect.aop) -> o.Detect.cur.oname = name) r.Ipa.final_ops
    in
    List.filter_map
      (fun (ae : Types.annotated_effect) ->
        if List.mem ae o.Detect.base.oeffects then None
        else Some (ae.eff.epred, ae.eff.evalue))
      o.Detect.cur.oeffects
    |> List.sort_uniq compare
  in
  (* ensureEnroll: restore player and tournament *)
  Alcotest.(check bool) "enroll restores tournament" true
    (List.mem ("tournament", Types.Set true) (added_of "enroll"));
  Alcotest.(check bool) "enroll restores player" true
    (List.mem ("player", Types.Set true) (added_of "enroll"));
  (* ensureBegin: restore tournament *)
  Alcotest.(check bool) "begin restores tournament" true
    (List.mem ("tournament", Types.Set true) (added_of "begin_tourn"));
  (* ensureDoMatch: restore both enrollments *)
  Alcotest.(check bool) "do_match restores enrollment" true
    (List.mem ("enrolled", Types.Set true) (added_of "do_match"));
  (* capacity handled by compensation *)
  Alcotest.(check bool) "capacity compensated" true
    (List.exists
       (fun (c : Compensation.t) -> c.comp_invariant = "capacity")
       (Ipa.compensations r))

(* ------------------------------------------------------------------ *)
(* Analysis context: caches, witness pruning, stats, invalidation      *)
(* ------------------------------------------------------------------ *)

(* A spec where a later repair changes the verdict of an earlier
   flagged pair.  (opx, opy) conflicts on [excl] but has no 1-effect
   repair while [w] is unreachable for opy: adding s(t):=true is
   sequentially unsafe through [sreq].  The later (opy, opz) conflict
   on [qreq] is repaired by adding w(t):=true to opy — after which the
   old (opx, opy) verdict is stale: s(t):=true became admissible.  A
   loop that never re-checks ignored pairs keeps the bogus flag. *)
let stale_src =
  {|
app Stale
sort E
predicate p(E)
predicate q(E)
predicate s(E)
predicate u(E)
predicate w(E)
invariant excl: forall(E:t) :- p(t) and q(t) => s(t)
invariant sreq: forall(E:t) :- s(t) => w(t)
invariant qreq: forall(E:t) :- q(t) and u(t) => w(t)
rule p: add-wins
rule q: add-wins
rule s: add-wins
rule u: add-wins
rule w: add-wins
operation opx(E:t)
  p(t) := true
operation opy(E:t)
  q(t) := true
operation opz(E:t)
  u(t) := true
|}

let test_ipa_ignored_invalidation () =
  let spec = Spec_parser.parse_string stale_src in
  let r = Ipa.run ~max_size:1 spec in
  (* the second repair (opy += w) must invalidate the stale flag on
     (opx, opy): the pair is then repairable (opy += s) *)
  Alcotest.(check (list (pair string string))) "no stale flagged pair" []
    (Ipa.flagged_pairs r);
  let opy =
    List.find
      (fun (o : Detect.aop) -> o.Detect.cur.oname = "opy")
      r.Ipa.final_ops
  in
  let added =
    List.filter_map
      (fun (ae : Types.annotated_effect) ->
        if List.mem ae opy.Detect.base.oeffects then None
        else Some ae.eff.epred)
      opy.Detect.cur.oeffects
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "opy repaired with s and w" [ "s"; "w" ]
    added;
  Alcotest.(check int) "patched spec is conflict-free" 0
    (List.length (Ipa.diagnose (Ipa.patched_spec r)))

(* run summary used by the equivalence tests: everything the analysis
   decides, ignoring instrumentation *)
let run_summary (r : Ipa.report) =
  ( List.map
      (fun (res : Ipa.resolution) ->
        ( res.Ipa.r_op1,
          res.Ipa.r_op2,
          match res.Ipa.r_outcome with
          | Ipa.Repaired s -> "repaired:" ^ s.Repair.s_op
          | Ipa.Compensated _ -> "compensated"
          | Ipa.Flagged -> "flagged" ))
      r.Ipa.resolutions,
    Ipa.flagged_pairs r,
    Ipa.patched_spec r )

let check_cache_equivalence spec =
  let on = Anactx.create () in
  let off = Anactx.create ~cache:false ~prune:false () in
  let r_on = Ipa.run ~ctx:on spec and r_off = Ipa.run ~ctx:off spec in
  Alcotest.(check bool)
    (spec.Types.app_name ^ ": identical outcome with caching/pruning off")
    true
    (run_summary r_on = run_summary r_off);
  (* pruning may only ever save solver work, never add it *)
  Alcotest.(check bool) "no extra SAT calls" true
    ((Anactx.stats on).Anactx.sat_calls
    <= (Anactx.stats off).Anactx.sat_calls)

let test_cache_equivalence_quick () =
  List.iter check_cache_equivalence
    [ Catalog.ticket (); Catalog.twitter (); Catalog.tpcw (); mini () ]

let test_cache_equivalence_tournament () =
  check_cache_equivalence (Catalog.tournament ())

let test_stats_counters () =
  let ctx = Anactx.create () in
  let r = Ipa.run ~ctx (Catalog.twitter ()) in
  let s = r.Ipa.stats in
  Alcotest.(check bool) "sat calls nonzero" true (s.Anactx.sat_calls > 0);
  Alcotest.(check bool) "decisions nonzero" true (s.Anactx.sat_decisions > 0);
  Alcotest.(check bool) "propagations nonzero" true
    (s.Anactx.sat_propagations > 0);
  Alcotest.(check bool) "pairs checked nonzero" true
    (s.Anactx.pairs_checked > 0);
  Alcotest.(check bool) "grounding cache used" true (s.Anactx.ground_hits > 0);
  Alcotest.(check bool) "wall time recorded" true (s.Anactx.total_seconds > 0.);
  Alcotest.(check bool) "candidates generated" true
    (s.Anactx.cands_generated > 0);
  Alcotest.(check bool) "witness pruning fired" true
    (s.Anactx.cands_pruned > 0);
  let snap = (s.Anactx.sat_calls, s.Anactx.pairs_checked) in
  (* a second run on the same ctx accumulates lookup counters but is
     answered entirely from the obligation/case caches: zero new
     solves *)
  let _ = Ipa.run ~ctx (Catalog.twitter ()) in
  Alcotest.(check int) "warm re-run adds no solver calls" (fst snap)
    s.Anactx.sat_calls;
  Alcotest.(check bool) "pair checks accumulate monotonically" true
    (s.Anactx.pairs_checked > snd snap);
  Alcotest.(check bool) "warm re-run hits the obligation cache" true
    (s.Anactx.oblig_hits > 0);
  let printed = Fmt.str "%a" Report.pp_stats r in
  Alcotest.(check bool) "stats render" true
    (Astring.String.is_infix ~affix:"SAT solves" printed)

let test_rule_choices_dedupe () =
  let spec = mini () in
  (* one opposing predicate: the spec's rules (e: add-wins among them)
     coincide with the enumerated add-wins assignment — it must not be
     proposed twice *)
  let choices = Repair.rule_choices ~search_rules:true spec [ "e" ] in
  let canon = List.map Types.canonical_rules choices in
  Alcotest.(check int) "no duplicate assignments"
    (List.length canon)
    (List.length (List.sort_uniq compare canon));
  (* spec's own rules always come first *)
  Alcotest.(check bool) "spec rules first" true
    (Types.rules_equal (List.hd choices) spec.Types.rules);
  (* two opposing predicates: 4 assignments, one equal to the spec's *)
  Alcotest.(check int) "two preds: 4 distinct choices" 4
    (List.length (Repair.rule_choices ~search_rules:true spec [ "e"; "p" ]));
  (* without search the spec's rules are the only choice *)
  Alcotest.(check int) "no search: 1 choice" 1
    (List.length (Repair.rule_choices ~search_rules:false spec [ "e" ]))

let test_rules_equal () =
  let aw = Types.Add_wins and rw = Types.Rem_wins in
  Alcotest.(check bool) "order-insensitive" true
    (Types.rules_equal [ ("a", aw); ("b", rw) ] [ ("b", rw); ("a", aw) ]);
  Alcotest.(check bool) "different assignment" false
    (Types.rules_equal [ ("a", aw) ] [ ("a", rw) ]);
  (* first binding wins, as in [Types.conv_rule_of] *)
  Alcotest.(check bool) "duplicate pred uses first binding" false
    (Types.rules_equal [ ("a", aw); ("a", rw) ] [ ("a", rw); ("a", aw) ]);
  Alcotest.(check bool) "redundant duplicate is harmless" true
    (Types.rules_equal [ ("a", aw); ("a", rw) ] [ ("a", aw) ])

(* ------------------------------------------------------------------ *)
(* Incremental analysis: per-clause obligations, serve protocol        *)
(* ------------------------------------------------------------------ *)

(* per-clause decomposition is exact: reports are bit-identical to the
   whole-invariant analysis (decompose:false) and to the context-free
   path, on every catalog app *)
let test_decompose_equivalence () =
  List.iter
    (fun spec ->
      let r_on = Ipa.run ~ctx:(Anactx.create ()) spec in
      let r_off = Ipa.run ~ctx:(Anactx.create ~decompose:false ()) spec in
      let r_none = Ipa.run spec in
      Alcotest.(check string)
        (spec.Types.app_name ^ ": decomposed report = whole-invariant")
        (Report.report_to_string r_off)
        (Report.report_to_string r_on);
      Alcotest.(check string)
        (spec.Types.app_name ^ ": decomposed report = context-free")
        (Report.report_to_string r_none)
        (Report.report_to_string r_on))
    [ Catalog.ticket (); Catalog.twitter (); mini () ]

(* an edit to one operation leaves unrelated obligations' cached
   verdicts untouched: re-checking a pair the edit did not reach adds
   zero obligation misses (and zero solver calls), while the edited
   pair's keys do miss *)
let test_incremental_invalidation () =
  let base = mini () in
  (* enroll gains a second effect: the signature is unchanged, so a
     server would keep the context; only keys reaching enroll change *)
  let edited =
    Spec_parser.parse_string
      (Astring.String.cuts ~sep:"e(x, y) := true" mini_src
      |> String.concat "e(x, y) := true\n  p(x) := true")
  in
  let ctx = Anactx.create () in
  let warm spec (n1, n2) =
    ignore (Detect.check_pair ~ctx spec (op spec n1) (op spec n2))
  in
  warm base ("add_p", "rem_p");
  warm base ("rem_t", "enroll");
  let s = Anactx.stats ctx in
  let snap () = (s.Anactx.oblig_misses, s.Anactx.sat_calls) in
  let before = snap () in
  warm edited ("add_p", "rem_p");
  Alcotest.(check bool)
    "unrelated pair: all obligations answered from cache" true
    (snap () = before);
  let before = snap () in
  warm edited ("rem_t", "enroll");
  Alcotest.(check bool) "edited pair: obligations re-solved" true
    (fst (snap ()) > fst before)

(* warm incremental re-analysis after random specification edits is
   bit-identical to analysing the edited spec from scratch *)
let prop_incremental_equivalence =
  QCheck.Test.make ~name:"incremental re-analysis = from-scratch" ~count:4
    QCheck.small_nat (fun seed ->
      let rng = Ipa_sim.Rng.create (100 + seed) in
      let ctx = Anactx.create () in
      ignore (Ipa.run ~ctx (Catalog.twitter ()));
      List.for_all
        (fun (spec, _what) ->
          let warm = Report.report_to_string (Ipa.run ~ctx spec) in
          let cold = Report.report_to_string (Ipa.run spec) in
          warm = cold)
        (Ipa_check.Specmut.edit_stream rng (Catalog.twitter ()) 3))

let test_serve_roundtrip () =
  let has affix l = Astring.String.is_infix ~affix l in
  let out =
    Serve.run_lines
      [ "load ticket"; "analyze"; "analyze"; "stats"; "bogus"; "quit" ]
  in
  Alcotest.(check bool) "load ok" true
    (List.exists (fun l -> has "ok load name=ticket" l && has "ctx=kept" l) out);
  let oks = List.filter (has "ok analyze") out in
  Alcotest.(check int) "two analyze replies" 2 (List.length oks);
  (match oks with
  | [ first; second ] ->
      Alcotest.(check bool) "first analysis solves" true
        (not (has "solves=0 " first))
      ;
      Alcotest.(check bool) "re-analysis is free" true
        (has "solves=0 " second && has "reuse=100.0%" second);
      Alcotest.(check bool) "report unchanged on re-analysis" true
        (has "changed=false" second)
  | _ -> Alcotest.fail "expected two analyze replies");
  Alcotest.(check bool) "report payload framed" true
    (List.exists (has "report ") out);
  Alcotest.(check bool) "stats ok" true (List.exists (has "ok stats") out);
  Alcotest.(check bool) "unknown command rejected" true
    (List.exists (has "err unknown command bogus") out);
  Alcotest.(check bool) "quit acknowledged" true
    (List.exists (has "ok quit") out);
  (* analyze without a spec is an error, not a crash *)
  Alcotest.(check bool) "analyze without spec" true
    (List.exists (has "err analyze")
       (Serve.run_lines [ "analyze"; "quit" ]))

let test_serve_spec_edit () =
  let has affix l = Astring.String.is_infix ~affix l in
  let spec_cmd src =
    let lines = String.split_on_char '\n' (String.trim src) in
    Fmt.str "spec %d" (List.length lines) :: lines
  in
  let edited =
    Astring.String.cuts ~sep:"e(x, y) := true" mini_src
    |> String.concat "e(x, y) := true\n  p(x) := true"
  in
  let out =
    Serve.run_lines
      (spec_cmd mini_src @ [ "analyze" ] @ spec_cmd edited
      @ [ "analyze"; "quit" ])
  in
  (* operation-only edit: the context must survive *)
  Alcotest.(check int) "ctx kept across both installs" 2
    (List.length (List.filter (has "ctx=kept") out));
  let oks = List.filter (has "ok analyze") out in
  Alcotest.(check int) "two analyses" 2 (List.length oks);
  match oks with
  | [ _; second ] ->
      (* the edit reached some obligations (misses > 0) but far from
         all: cached verdicts for untouched pairs were reused *)
      Alcotest.(check bool) "re-analysis reuses cache" true
        (has "obligations=" second && not (has "reuse=0.0%" second))
  | _ -> Alcotest.fail "expected two analyze replies"

(* a zero-solve run renders finite rates everywhere (guarded
   divisions): no nan in stats output *)
let test_stats_no_nan () =
  let ctx = Anactx.create () in
  let s = Anactx.stats ctx in
  let printed = Fmt.str "%a" Anactx.pp_stats s in
  Alcotest.(check bool) "no nan in empty stats" false
    (Astring.String.is_infix ~affix:"nan" printed);
  Alcotest.(check (float 0.0)) "reuse rate of empty run" 0.0
    (Anactx.reuse_rate s);
  (* warm a cache, then re-run: the second, all-hit run must also
     print finite rates *)
  ignore (Ipa.run ~ctx (mini ()));
  ignore (Ipa.run ~ctx (mini ()));
  let printed = Fmt.str "%a" Anactx.pp_stats (Anactx.stats ctx) in
  Alcotest.(check bool) "no nan after cache-only run" false
    (Astring.String.is_infix ~affix:"nan" printed)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let test_report_witness () =
  let spec = mini () in
  match Detect.check_pair spec (op spec "rem_t") (op spec "enroll") with
  | Detect.Safe -> Alcotest.fail "expected conflict"
  | Detect.Conflict w ->
      let s = Report.witness_to_string ~op1:"rem_t" ~op2:"enroll" w in
      Alcotest.(check bool) "mentions Sinit" true
        (Astring.String.is_infix ~affix:"Sinit" s);
      Alcotest.(check bool) "mentions merge" true
        (Astring.String.is_infix ~affix:"merge" s);
      Alcotest.(check bool) "mentions violated" true
        (Astring.String.is_infix ~affix:"violated: ref" s)

let test_report_table1 () =
  let s = Fmt.str "%a" Report.pp_table1 (Catalog.all ()) in
  Alcotest.(check bool) "has header" true
    (Astring.String.is_infix ~affix:"Inv. Type" s);
  Alcotest.(check bool) "has ref integrity row" true
    (Astring.String.is_infix ~affix:"Ref. integrity" s);
  Alcotest.(check bool) "has compensation cell" true
    (Astring.String.is_infix ~affix:"Comp." s)

let test_report_full () =
  let r = Ipa.run (mini ()) in
  let s = Report.report_to_string r in
  Alcotest.(check bool) "mentions final operations" true
    (Astring.String.is_infix ~affix:"final operations" s);
  Alcotest.(check bool) "reports I-Confluent" true
    (Astring.String.is_infix ~affix:"I-Confluent" s)

(* ------------------------------------------------------------------ *)
(* Escrow planning (static half)                                       *)
(* ------------------------------------------------------------------ *)

let resource name spec =
  match
    List.find_opt
      (fun r -> r.Escrow_plan.r_name = name)
      (Escrow_plan.resources spec)
  with
  | Some r -> r
  | None -> Alcotest.failf "no escrow resource %S" name

let test_escrow_plan_ticket () =
  let r = resource "available" (Catalog.ticket ()) in
  Alcotest.(check bool) "numeric source" true
    (r.Escrow_plan.r_source = Escrow_plan.Res_numeric);
  Alcotest.(check bool) "not wildcard" false r.Escrow_plan.r_wild;
  Alcotest.(check (option int)) "lower bound" (Some 0) r.Escrow_plan.r_lo;
  Alcotest.(check (option int)) "upper bound" (Some 16) r.Escrow_plan.r_hi;
  Alcotest.(check (list string)) "decrementers" [ "buy_ticket" ]
    r.Escrow_plan.r_dec_ops;
  Alcotest.(check bool) "rights at 5" true
    (Escrow_plan.rights_pool r ~value:5 = Some 5);
  Alcotest.(check bool) "headroom at 5" true
    (Escrow_plan.headroom_pool r ~value:5 = Some 11)

let test_escrow_plan_tournament () =
  let r = resource "enrolled" (Catalog.tournament ()) in
  Alcotest.(check bool) "cardinality source" true
    (r.Escrow_plan.r_source = Escrow_plan.Res_cardinality);
  Alcotest.(check bool) "wildcard reservation" true r.Escrow_plan.r_wild;
  Alcotest.(check (option int)) "no lower bound" None r.Escrow_plan.r_lo;
  Alcotest.(check (option int)) "capacity cap" (Some 3) r.Escrow_plan.r_hi;
  Alcotest.(check bool) "no rights pool" true
    (Escrow_plan.rights_pool r ~value:1 = None)

let test_escrow_plan_tpcw () =
  let r = resource "stock" (Catalog.tpcw ()) in
  Alcotest.(check (option int)) "stock floor" (Some 0) r.Escrow_plan.r_lo;
  Alcotest.(check (option int)) "stock unbounded above" None
    r.Escrow_plan.r_hi;
  Alcotest.(check bool) "restock increments" true
    (List.mem "restock" r.Escrow_plan.r_inc_ops);
  Alcotest.(check bool) "headroom unbounded" true
    (Escrow_plan.headroom_pool r ~value:100 = None)

let test_apportion_basic () =
  Alcotest.(check (list (pair string int)))
    "proportional split"
    [ ("a", 7); ("b", 2); ("c", 1) ]
    (Escrow_plan.apportion ~total:10
       [ ("a", 0.7); ("b", 0.2); ("c", 0.1) ]);
  Alcotest.(check (list (pair string int)))
    "zero weights degrade to even split"
    [ ("a", 4); ("b", 3); ("c", 3) ]
    (Escrow_plan.apportion ~total:10 [ ("a", 0.0); ("b", 0.0); ("c", 0.0) ])

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

(* apportion always conserves the pool and never strays more than one
   unit from the exact proportional quota *)
let prop_apportion_exact =
  QCheck.Test.make ~name:"apportion conserves and stays within quota"
    ~count:300
    QCheck.(
      pair (int_bound 500)
        (list_of_size
           Gen.(int_range 1 6)
           (map (fun w -> float_of_int w) (int_bound 20))))
    (fun (total, weights) ->
      let named = List.mapi (fun i w -> (Printf.sprintf "r%d" i, w)) weights in
      let shares = Escrow_plan.apportion ~total named in
      let sum = List.fold_left (fun a (_, n) -> a + n) 0 shares in
      let wsum = List.fold_left (fun a (_, w) -> a +. w) 0.0 named in
      let within_quota =
        wsum <= 0.0
        || List.for_all2
             (fun (_, w) (_, n) ->
               let quota = float_of_int total *. w /. wsum in
               Float.abs (float_of_int n -. quota) <= 1.0)
             named shares
      in
      sum = total
      && List.for_all (fun (_, n) -> n >= 0) shares
      && List.map fst shares = List.map fst named
      && within_quota
      && shares = Escrow_plan.apportion ~total named)

(* merging is commutative up to the resolved write set *)
let prop_merge_commutative =
  QCheck.Test.make ~name:"merge_writes is commutative" ~count:200
    QCheck.(
      make
        Gen.(
          let gen_write =
            map2
              (fun i v -> ({ Ground.gpred = "p"; gargs = [ Printf.sprintf "a%d" (i mod 3) ] }, v))
              small_nat bool
          in
          pair (list_size (int_bound 4) gen_write)
            (list_size (int_bound 4) gen_write)))
    (fun (bw1, bw2) ->
      let dedup l =
        List.fold_left
          (fun acc (a, v) -> if List.mem_assoc a acc then acc else (a, v) :: acc)
          [] l
      in
      let spec = mini () in
      let w1 = { Effects.bool_writes = dedup bw1; num_writes = [] } in
      let w2 = { Effects.bool_writes = dedup bw2; num_writes = [] } in
      let norm ms =
        List.map
          (fun (m : Effects.writes) ->
            List.sort compare m.Effects.bool_writes)
          ms
        |> List.sort compare
      in
      norm (Effects.merge_writes spec w1 w2)
      = norm (Effects.merge_writes spec w2 w1))

(* detection is symmetric in the pair order *)
let prop_detect_symmetric =
  let spec = mini () in
  let names = [ "add_p"; "rem_p"; "add_t"; "rem_t"; "enroll"; "disenroll" ] in
  QCheck.Test.make ~name:"check_pair is order-insensitive" ~count:15
    QCheck.(pair (oneofl names) (oneofl names))
    (fun (n1, n2) ->
      let v1 = Detect.check_pair spec (op spec n1) (op spec n2) in
      let v2 = Detect.check_pair spec (op spec n2) (op spec n1) in
      (v1 = Detect.Safe) = (v2 = Detect.Safe))

(* every solution the repair search returns is actually safe, preserves
   intent, and is validated under its own rule set — across random
   convergence-rule assignments of the mini spec *)
let prop_repair_solutions_sound =
  QCheck.Test.make ~name:"repair solutions are sound under random rules"
    ~count:8
    QCheck.(
      make
        Gen.(
          triple bool bool
            (pair (oneofl [ "rem_t"; "rem_p"; "disenroll" ])
               (oneofl [ "enroll"; "add_p"; "add_t" ]))))
    (fun (e_aw, p_aw, (n1, n2)) ->
      let rules =
        [
          ("e", if e_aw then Types.Add_wins else Types.Rem_wins);
          ("p", if p_aw then Types.Add_wins else Types.Rem_wins);
          ("t", Types.Add_wins);
        ]
      in
      let spec = { (mini ()) with Types.rules } in
      let o1 = op spec n1 and o2 = op spec n2 in
      match Detect.check_pair spec o1 o2 with
      | Detect.Safe -> true
      | Detect.Conflict _ ->
          let sols = Repair.repair_conflicts ~search_rules:true spec (o1, o2) in
          List.for_all
            (fun (s : Repair.solution) ->
              let p1, p2 = s.s_pair in
              let spec' = { spec with Types.rules = s.s_rules } in
              Detect.check_pair spec' p1 p2 = Detect.Safe
              && Repair.preserves_intent spec' p1
              && Repair.preserves_intent spec' p2
              && Detect.sequentially_safe spec' p1
              && Detect.sequentially_safe spec' p2)
            sols)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_commutative; prop_detect_symmetric;
      prop_repair_solutions_sound; prop_incremental_equivalence;
      prop_apportion_exact ]

let () =
  Alcotest.run "ipa_core"
    [
      ( "pairctx",
        [
          Alcotest.test_case "partitions" `Quick test_partitions;
          Alcotest.test_case "unifications" `Quick test_unifications;
          Alcotest.test_case "domains" `Quick test_unification_domains;
        ] );
      ( "effects",
        [
          Alcotest.test_case "wildcard writes" `Quick test_ground_writes_wildcard;
          Alcotest.test_case "last write wins in op" `Quick
            test_ground_writes_last_wins;
          Alcotest.test_case "merge add-wins" `Quick test_merge_add_wins;
          Alcotest.test_case "merge lww outcomes" `Quick
            test_merge_lww_two_outcomes;
          Alcotest.test_case "merge numeric" `Quick test_merge_numeric_sums;
          Alcotest.test_case "weakest precondition" `Quick test_apply_writes_wp;
        ] );
      ( "detect",
        [
          Alcotest.test_case "rem_t/enroll conflict" `Quick
            test_detect_conflict_rem_t_enroll;
          Alcotest.test_case "rem_p/enroll conflict" `Quick
            test_detect_conflict_rem_p_enroll;
          Alcotest.test_case "safe pairs" `Quick test_detect_safe_pairs;
          Alcotest.test_case "witness shape" `Quick test_detect_witness_shape;
          Alcotest.test_case "rules matter" `Quick test_detect_rules_matter;
          Alcotest.test_case "sequential safety" `Quick test_sequentially_safe;
          Alcotest.test_case "numeric self-conflict" `Quick
            test_detect_numeric_self_conflict;
          Alcotest.test_case "find conflicting pair" `Quick
            test_find_conflicting_pair;
        ] );
      ( "repair",
        [
          Alcotest.test_case "figure 2b" `Quick test_repair_figure2b;
          Alcotest.test_case "figure 2c (rule search)" `Quick
            test_repair_figure2c_needs_rules;
          Alcotest.test_case "solutions are safe" `Quick
            test_repair_solutions_are_safe;
          Alcotest.test_case "minimality" `Quick test_repair_minimality;
          Alcotest.test_case "numeric has no boolean repair" `Quick
            test_repair_none_for_numeric;
          Alcotest.test_case "pick policies" `Quick test_pick_policies;
          Alcotest.test_case "disjunction invariant" `Quick
            test_repair_disjunction;
        ] );
      ( "compensation",
        [
          Alcotest.test_case "restock" `Quick test_compensation_restock;
          Alcotest.test_case "remove excess" `Quick
            test_compensation_remove_excess;
          Alcotest.test_case "covers" `Quick test_compensation_covers;
          Alcotest.test_case "not for boolean" `Quick
            test_compensation_not_for_boolean;
        ] );
      ( "classify",
        [
          Alcotest.test_case "tournament" `Quick test_classify_tournament;
          Alcotest.test_case "ticket" `Quick test_classify_ticket;
          Alcotest.test_case "tpcw" `Quick test_classify_tpcw;
          Alcotest.test_case "twitter" `Quick test_classify_twitter;
          Alcotest.test_case "support table" `Quick test_classify_support_table;
        ] );
      ( "loop",
        [
          Alcotest.test_case "mini run" `Quick test_ipa_run_mini;
          Alcotest.test_case "ticket run" `Quick test_ipa_run_ticket;
          Alcotest.test_case "bounded iterations" `Quick
            test_ipa_run_terminates;
          Alcotest.test_case "ignored pairs re-checked after repair" `Quick
            test_ipa_ignored_invalidation;
          Alcotest.test_case "tournament reproduces figure 3" `Slow
            test_ipa_run_tournament_figure3;
        ] );
      ( "anactx",
        [
          Alcotest.test_case "cache/prune equivalence (small apps)" `Quick
            test_cache_equivalence_quick;
          Alcotest.test_case "cache/prune equivalence (tournament)" `Slow
            test_cache_equivalence_tournament;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "rule choices deduplicated" `Quick
            test_rule_choices_dedupe;
          Alcotest.test_case "rules_equal is set equality" `Quick
            test_rules_equal;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "decomposition is exact" `Quick
            test_decompose_equivalence;
          Alcotest.test_case "edits invalidate only reached obligations"
            `Quick test_incremental_invalidation;
          Alcotest.test_case "serve round-trip" `Quick test_serve_roundtrip;
          Alcotest.test_case "serve spec edit keeps context" `Quick
            test_serve_spec_edit;
          Alcotest.test_case "stats rates are finite" `Quick
            test_stats_no_nan;
        ] );
      ( "escrow_plan",
        [
          Alcotest.test_case "ticket bounds" `Quick test_escrow_plan_ticket;
          Alcotest.test_case "tournament wildcard cap" `Quick
            test_escrow_plan_tournament;
          Alcotest.test_case "tpcw stock" `Quick test_escrow_plan_tpcw;
          Alcotest.test_case "apportion" `Quick test_apportion_basic;
        ] );
      ( "report",
        [
          Alcotest.test_case "witness" `Quick test_report_witness;
          Alcotest.test_case "table 1" `Quick test_report_table1;
          Alcotest.test_case "full report" `Quick test_report_full;
        ] );
      ("properties", qcheck_tests);
    ]
