(** Tests for [ipa_spec]: the DSL parser, validation and the application
    catalog. *)

open Ipa_logic
open Ipa_spec

let parse = Spec_parser.parse_string

(* ------------------------------------------------------------------ *)
(* DSL parser                                                          *)
(* ------------------------------------------------------------------ *)

let minimal_src =
  {|
app Mini
sort Thing
predicate thing(Thing)
invariant triv: forall(Thing:t) :- thing(t) => thing(t)
rule thing: add-wins
operation add(Thing:t)
  thing(t) := true
|}

let test_parse_minimal () =
  let s = parse minimal_src in
  Alcotest.(check string) "app name" "Mini" s.Types.app_name;
  Alcotest.(check int) "one sort" 1 (List.length s.sorts);
  Alcotest.(check int) "one predicate" 1 (List.length s.preds);
  Alcotest.(check int) "one invariant" 1 (List.length s.invariants);
  Alcotest.(check int) "one operation" 1 (List.length s.operations);
  Alcotest.(check bool) "rule recorded" true
    (Types.conv_rule_of s "thing" = Types.Add_wins)

let test_parse_effects () =
  let src =
    {|
app Effects
sort A
sort B
predicate p(A)
predicate q(A, B)
numeric n(A) in [0, 8]
invariant t: forall(A:a) :- p(a) => p(a)
operation o(A:a, B:b)
  p(a) := true
  q(a, b) := false
  q(*, b) := false
  n(a) += 2
  n(a) -= 1
  p(a) := true touch
|}
  in
  let s = parse src in
  let op = List.hd s.Types.operations in
  Alcotest.(check int) "six effects" 6 (List.length op.oeffects);
  let eff i = List.nth op.oeffects i in
  Alcotest.(check bool) "set true" true ((eff 0).eff.evalue = Types.Set true);
  Alcotest.(check bool) "set false" true ((eff 1).eff.evalue = Types.Set false);
  Alcotest.(check bool) "wildcard arg" true
    (List.hd (eff 2).eff.eargs = Ast.Star);
  Alcotest.(check bool) "delta +2" true ((eff 3).eff.evalue = Types.Delta 2);
  Alcotest.(check bool) "delta -1" true ((eff 4).eff.evalue = Types.Delta (-1));
  Alcotest.(check bool) "touch mode" true ((eff 5).mode = Types.Touch)

let test_parse_multiline_invariant () =
  let src =
    {|
app M
sort A
predicate p(A)
predicate q(A)
invariant long: forall(A:a) :-
    p(a) =>
    q(a)
operation o(A:a)
  p(a) := true
|}
  in
  let s = parse src in
  let inv = List.hd s.Types.invariants in
  Alcotest.(check string) "joined formula" "forall(A:a) :- p(a) => q(a)"
    (Pp.formula_to_string inv.iformula)

let test_parse_tags () =
  let src =
    {|
app M
sort A
sort Id
predicate hasId(A, Id)
invariant [unique] u: forall(A:a, b, Id:i) :- hasId(a,i) and hasId(b,i) => a == b
invariant [sequential] s: forall(A:a) :- hasId(a, a) => hasId(a, a)
operation o(A:a, Id:i)
  hasId(a, i) := true
|}
  in
  let s = parse src in
  let tags = List.map (fun i -> i.Types.itag) s.Types.invariants in
  Alcotest.(check bool) "unique tag" true
    (List.mem (Some Types.Tag_unique_id) tags);
  Alcotest.(check bool) "sequential tag" true
    (List.mem (Some Types.Tag_sequential_id) tags)

let expect_syntax_error src =
  match parse src with
  | exception Spec_parser.Syntax_error _ -> ()
  | exception Validate.Invalid _ -> ()
  | _ -> Alcotest.failf "expected rejection of %S" src

let test_parse_errors () =
  expect_syntax_error "app X\nbogus line here\n";
  expect_syntax_error "app X\nconst Capacity = many\n";
  expect_syntax_error "app X\nsort A\noperation o(A)\n" (* param w/o name *);
  expect_syntax_error
    "app X\nsort A\npredicate p(A)\noperation o(A:a)\n  p(a) = true\n"

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validate_unknown_pred_in_effect () =
  expect_syntax_error
    {|
app V
sort A
predicate p(A)
invariant t: forall(A:a) :- p(a) => p(a)
operation o(A:a)
  ghost(a) := true
|}

let test_validate_unknown_pred_in_invariant () =
  expect_syntax_error
    {|
app V
sort A
predicate p(A)
invariant t: forall(A:a) :- ghost(a) => p(a)
operation o(A:a)
  p(a) := true
|}

let test_validate_arity () =
  expect_syntax_error
    {|
app V
sort A
predicate p(A)
invariant t: forall(A:a) :- p(a) => p(a)
operation o(A:a)
  p(a, a) := true
|}

let test_validate_unbound_param () =
  expect_syntax_error
    {|
app V
sort A
predicate p(A)
invariant t: forall(A:a) :- p(a) => p(a)
operation o(A:a)
  p(z) := true
|}

let test_validate_numeric_mismatch () =
  expect_syntax_error
    {|
app V
sort A
numeric n(A) in [0, 4]
invariant t: forall(A:a) :- n(a) >= 0
operation o(A:a)
  n(a) := true
|}

let test_validate_free_var_invariant () =
  expect_syntax_error
    {|
app V
sort A
predicate p(A)
invariant t: p(x)
operation o(A:a)
  p(a) := true
|}

let test_validate_named_const_ok () =
  (* free variables that are declared consts are fine *)
  let s =
    parse
      {|
app V
sort A
const K = 3
predicate p(A)
invariant t: #p(*) <= K
operation o(A:a)
  p(a) := true
|}
  in
  Alcotest.(check int) "const recorded" 3 (List.assoc "K" s.Types.consts)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let test_catalog_all_parse () =
  let specs = Catalog.all () in
  Alcotest.(check int) "five applications" 5 (List.length specs);
  List.iter
    (fun (s : Types.t) ->
      Alcotest.(check bool)
        (s.app_name ^ " validates")
        true
        (Validate.check s = []))
    specs

let test_catalog_tournament_shape () =
  let s = Catalog.tournament () in
  Alcotest.(check int) "figure 1 has 6 invariants" 6
    (List.length s.Types.invariants);
  Alcotest.(check int) "nine operations" 9 (List.length s.Types.operations);
  (* the capacity invariant uses a cardinality *)
  Alcotest.(check bool) "capacity is a cardinality constraint" true
    (List.exists
       (fun i -> Ast.has_cardinality i.Types.iformula)
       s.Types.invariants);
  Alcotest.(check int) "Capacity constant" 3
    (List.assoc "Capacity" s.Types.consts)

let test_catalog_signature () =
  let s = Catalog.tournament () in
  let sg = Types.signature s in
  Alcotest.(check int) "six boolean predicates" 6
    (List.length sg.Ground.pred_sorts);
  Alcotest.(check (list string)) "enrolled sorts" [ "Player"; "Tournament" ]
    (List.assoc "enrolled" sg.Ground.pred_sorts)

let test_catalog_ticket_numeric () =
  let s = Catalog.ticket () in
  let bounds =
    Types.int_bounds s { Ground.gfun = "available"; gnargs = [ "e1" ] }
  in
  Alcotest.(check (pair int int)) "declared bounds" (0, 16) bounds;
  let op = Option.get (Types.find_op s "buy_ticket") in
  Alcotest.(check (list string)) "buy writes available" [ "available" ]
    (Types.written_nfuns op)

let test_catalog_written_preds () =
  let s = Catalog.tournament () in
  let op = Option.get (Types.find_op s "finish_tourn") in
  Alcotest.(check (list string)) "finish writes active+finished"
    [ "active"; "finished" ] (Types.written_preds op)

let test_invariant_formula_conjunction () =
  let s = Catalog.tournament () in
  let inv = Types.invariant_formula s in
  Alcotest.(check int) "six clauses" 6 (List.length (Ast.clauses inv))

(* round-trip: pp an operation and check it mentions its effects *)
let test_pp_operation () =
  let s = Catalog.tournament () in
  let op = Option.get (Types.find_op s "enroll") in
  let str = Types.operation_to_string op in
  Alcotest.(check bool) "mentions effect" true
    (Astring.String.is_infix ~affix:"enrolled(p, t) := true" str)

(* ------------------------------------------------------------------ *)
(* Composition (§5.1.4)                                                *)
(* ------------------------------------------------------------------ *)

let album_src =
  {|
app Album
sort User
sort Photo
predicate user(User)
predicate photo(Photo)
predicate ownedBy(Photo, User)
invariant owner_ref: forall(Photo:p, User:u) :- ownedBy(p,u) => photo(p) and user(u)
rule user: add-wins
rule photo: add-wins
rule ownedBy: add-wins
operation upload(Photo:p, User:u)
  photo(p) := true
  ownedBy(p, u) := true
|}

let chat_src =
  {|
app Chat
sort User
sort Msg
predicate user(User)
predicate msg(Msg)
predicate sentBy(Msg, User)
invariant sender_ref: forall(Msg:m, User:u) :- sentBy(m,u) => msg(m) and user(u)
rule user: add-wins
rule msg: add-wins
rule sentBy: add-wins
operation send(Msg:m, User:u)
  msg(m) := true
  sentBy(m, u) := true
operation rem_user(User:u)
  user(u) := false
|}

let test_compose_merge () =
  let album = parse album_src and chat = parse chat_src in
  let merged = Compose.merge [ album; chat ] in
  Alcotest.(check (list string)) "sorts unified"
    [ "User"; "Photo"; "Msg" ] merged.Types.sorts;
  (* shared predicate [user] appears once *)
  Alcotest.(check int) "five predicates" 5 (List.length merged.Types.preds);
  Alcotest.(check int) "two invariants" 2 (List.length merged.Types.invariants);
  Alcotest.(check int) "three operations" 3
    (List.length merged.Types.operations)

let test_compose_finds_cross_app_conflict () =
  (* Chat's rem_user conflicts with Album's upload — only visible in the
     combined specification *)
  let album = parse album_src and chat = parse chat_src in
  Alcotest.(check int) "album alone is clean" 0
    (List.length (Ipa_core.Ipa.diagnose album));
  let merged = Compose.merge [ album; chat ] in
  let conflicts = Ipa_core.Ipa.diagnose merged in
  Alcotest.(check bool) "cross-application conflict found" true
    (List.exists
       (fun (o1, o2, _) ->
         (o1 = "rem_user" && o2 = "upload")
         || (o1 = "upload" && o2 = "rem_user"))
       conflicts)

let test_compose_rule_clash_rejected () =
  let album = parse album_src in
  let chat_rw =
    parse
      (Astring.String.cuts ~sep:"rule user: add-wins" chat_src
      |> String.concat "rule user: rem-wins")
  in
  match Compose.merge [ album; chat_rw ] with
  | exception Compose.Incompatible _ -> ()
  | _ -> Alcotest.fail "conflicting convergence rules must be rejected"

let test_compose_name_clash_qualified () =
  let album = parse album_src in
  let merged = Compose.merge [ album; album ] in
  (* the second copy's operation gets qualified *)
  Alcotest.(check bool) "qualified op name" true
    (Option.is_some (Types.find_op merged "Album.upload"))

(* ------------------------------------------------------------------ *)
(* Renderer round-trip: parse (render s) = s                           *)
(* ------------------------------------------------------------------ *)

let catalog_specs () =
  [
    ("tournament", Catalog.tournament ());
    ("twitter", Catalog.twitter ());
    ("ticket", Catalog.ticket ());
    ("tpcw", Catalog.tpcw ());
    ("tpcc", Catalog.tpcc ());
  ]

let check_roundtrip (name : string) (spec : Types.t) =
  let rendered = Render.to_string spec in
  match parse rendered with
  | reparsed ->
      if reparsed <> spec then
        Alcotest.failf "round-trip changed %s; rendered:@.%s" name rendered
  | exception e ->
      Alcotest.failf "rendered %s does not reparse (%s):@.%s" name
        (Printexc.to_string e) rendered

let test_roundtrip_catalog () =
  List.iter (fun (name, spec) -> check_roundtrip name spec) (catalog_specs ())

(* the identity must hold on a whole neighbourhood of mutated specs,
   not just the hand-written catalog (negative deltas, toggled touch
   annotations, rotated rules, fresh consts/sorts) *)
let test_roundtrip_mutations seed =
  let rng = Ipa_sim.Rng.create seed in
  List.iter
    (fun (name, spec) ->
      for i = 1 to 25 do
        let m = Ipa_check.Specmut.mutations rng spec (1 + (i mod 4)) in
        check_roundtrip (Fmt.str "%s/mutant-%d" name i) m
      done)
    (catalog_specs ())

(* a rendered spec is stable: render (parse (render s)) = render s *)
let test_roundtrip_render_fixpoint () =
  List.iter
    (fun (name, spec) ->
      let r1 = Render.to_string spec in
      let r2 = Render.to_string (parse r1) in
      Alcotest.(check string) (name ^ " render fixpoint") r1 r2)
    (catalog_specs ())

(* [Specmut.grow] and [Specmut.edit_operation] feed the incremental
   benchmarks: every spec they produce must validate, [grow] must keep
   the signature (so a warm analysis context survives), and an edit must
   touch exactly the operation it names *)
let test_specmut_grow_edit seed =
  let rng = Ipa_sim.Rng.create seed in
  List.iter
    (fun (name, spec) ->
      let grown = Ipa_check.Specmut.grow rng spec 6 in
      Alcotest.(check int)
        (name ^ ": grow validates") 0
        (List.length (Validate.check grown));
      Alcotest.(check bool) (name ^ ": grow keeps signature") true
        (Types.signature grown = Types.signature spec);
      Alcotest.(check int)
        (name ^ ": grow adds the requested operations")
        (List.length spec.Types.operations + 6)
        (List.length grown.Types.operations);
      List.iter
        (fun (edited, what) ->
          Alcotest.(check int)
            (Fmt.str "%s: edit %s validates" name what)
            0
            (List.length (Validate.check edited));
          let changed =
            List.filter
              (fun (o : Types.operation) ->
                match Types.find_op grown o.oname with
                | Some o' -> o' <> o
                | None -> true)
              edited.Types.operations
          in
          Alcotest.(check int)
            (Fmt.str "%s: edit %s touches exactly one operation" name what)
            1 (List.length changed))
        (Ipa_check.Specmut.edit_stream rng grown 1))
    [ ("twitter", Catalog.twitter ()); ("ticket", Catalog.ticket ()) ]

let () =
  Alcotest.run "ipa_spec"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "effects" `Quick test_parse_effects;
          Alcotest.test_case "multiline invariant" `Quick
            test_parse_multiline_invariant;
          Alcotest.test_case "tags" `Quick test_parse_tags;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "validate",
        [
          Alcotest.test_case "unknown pred in effect" `Quick
            test_validate_unknown_pred_in_effect;
          Alcotest.test_case "unknown pred in invariant" `Quick
            test_validate_unknown_pred_in_invariant;
          Alcotest.test_case "arity" `Quick test_validate_arity;
          Alcotest.test_case "unbound parameter" `Quick
            test_validate_unbound_param;
          Alcotest.test_case "numeric mismatch" `Quick
            test_validate_numeric_mismatch;
          Alcotest.test_case "free var invariant" `Quick
            test_validate_free_var_invariant;
          Alcotest.test_case "named const" `Quick test_validate_named_const_ok;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "all parse" `Quick test_catalog_all_parse;
          Alcotest.test_case "tournament shape" `Quick
            test_catalog_tournament_shape;
          Alcotest.test_case "signature" `Quick test_catalog_signature;
          Alcotest.test_case "ticket numeric" `Quick test_catalog_ticket_numeric;
          Alcotest.test_case "written preds" `Quick test_catalog_written_preds;
          Alcotest.test_case "invariant conjunction" `Quick
            test_invariant_formula_conjunction;
          Alcotest.test_case "pp operation" `Quick test_pp_operation;
        ] );
      ( "compose",
        [
          Alcotest.test_case "merge" `Quick test_compose_merge;
          Alcotest.test_case "cross-app conflict" `Quick
            test_compose_finds_cross_app_conflict;
          Alcotest.test_case "rule clash rejected" `Quick
            test_compose_rule_clash_rejected;
          Alcotest.test_case "name clash qualified" `Quick
            test_compose_name_clash_qualified;
        ] );
      ( "render round-trip",
        [
          Alcotest.test_case "catalog identity" `Quick test_roundtrip_catalog;
          Testutil.seeded_case "mutated specs" `Quick ~default:2024
            test_roundtrip_mutations;
          Testutil.seeded_case "grow/edit mutators" `Quick ~default:2024
            test_specmut_grow_edit;
          Alcotest.test_case "render fixpoint" `Quick
            test_roundtrip_render_fixpoint;
        ] );
    ]
